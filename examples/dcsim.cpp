// dcsim — a command-line driver over the whole library: pick a network
// size, an algorithm, a workload, and get verified results plus the model
// step counters. Intended as the "one binary to poke at everything".
//
//   ./dcsim --algo=prefix    --n=4 --op=plus
//   ./dcsim --algo=sort      --n=3 --dist=reverse
//   ./dcsim --algo=radix     --n=3 --bits=8
//   ./dcsim --algo=enum      --n=3
//   ./dcsim --algo=broadcast --n=4 --root=5
//   ./dcsim --algo=allreduce --n=4
//   ./dcsim --algo=route     --n=4 --pattern=random
//   ./dcsim --algo=prefix    --n=3 --faults=random:2,7
//   ./dcsim --algo=broadcast --n=3 --faults=nodes:3,17 --fault-policy=degrade
//   ./dcsim --algo=sort      --n=3 --faults=nodes:5
//   ./dcsim --algo=prefix    --n=4 --fault-timeline=link:0-1:down@2:up@4
//   ./dcsim --algo=sort      --n=4 --fault-timeline=node:3:down@9:up@30
//   ./dcsim --algo=prefix    --n=4 --trace=out.json --metrics
//   ./dcsim --algo=prefix    --n=12 --shards=8 --mem-budget=100000000
//
// --schedule=compiled|interpreted selects the communication path: compiled
// (default) records + caches each algorithm's oblivious schedule and runs a
// warm-up so the reported run replays it; interpreted plans and validates
// every cycle. Counters and results are identical either way.
//
// --schedule-cache=DIR (or DC_SCHEDULE_CACHE=DIR) persists compiled
// schedules to DIR as mmap-friendly files shared across processes: a
// process finding its schedule on disk skips record-and-validate entirely
// (the run summary's "schedule disk hits" row counts the loads). Corrupt
// or stale files are rejected by checksum + embedded key and silently
// fall back to recording.
//
// --trace=FILE.json records every comm cycle, oblivious-section
// record/replay span, schedule-cache event and fault drop/detour into
// FILE.json (Chrome-trace format — open in chrome://tracing or
// https://ui.perfetto.dev). The warm-up and measured machines share one
// timeline on separate tracks, so the record run and its replay are both
// visible. --metrics[=table|json] arms the process metrics registry and
// prints dc::sim::metrics_report() after the run.
//
// --faults=nodes:a,b,c | random:k[,seed] injects a static fault scenario
// and runs the fault-tolerant variant (prefix, broadcast and sort),
// printing a graceful-degradation report. --fault-policy=strict (default)
// attaches the plan to the machine so any unplanned touch of a dead node
// throws; degrade drops such messages and counts them instead. Strict mode
// rejects specs with n or more node faults up front (the n-connectivity
// guarantee covers only fewer than n).
//
// --fault-timeline=SPEC runs the self-healing driver over a *dynamic*
// fault timeline: '+'-separated timed events
//   node:ID:down@C[:up@C]   link:U-V:down@C[:up@C]   drop:PERMILLE@C1-C2
// (cycles are machine comm-cycle indices). The collective plans against
// the epoch live at its start; a mid-run epoch change aborts the phase in
// flight, pays a bounded backoff, re-plans on the new faulted view and
// retries from the last checkpoint (--retry-budget bounds total retries,
// default 8). --fault-policy picks the budget-exhaustion behavior: strict
// rethrows, degrade finishes one attempt dropping fault-touching
// messages. Supports --algo=prefix|broadcast|sort, and --shards
// (degrade only: per-shard machines filter the localized timeline while
// the host-side exchange is unaffected).
//
// --shards=K runs D_prefix through the cluster-sharded engine (K per-shard
// machines over the recursive D_(n-1) decomposition) with streaming input
// and output — no global data vector is ever materialized, and the result
// stream is verified on the fly. --mem-budget=BYTES caps resident memory:
// runs whose working set + result store exceed the budget spill result
// slices out of core, keeping peak resident linear in N/K; runs whose
// per-shard working set alone exceeds the budget go fully out of core,
// streaming t/s through a budget-sized window on every synchronous cycle
// (slower, but peak resident stays under the cap at any N — use more
// shards to bring the cycles back in core). The run reports the
// memory-model prediction next to the kernel-measured peak RSS.
//
// --profile attaches the cycle profiler to the measured machine(s):
// critical-path attribution per trace track, per-cycle receiver-band
// imbalance telemetry (sim.imbalance.* histograms under --metrics), and
// the top-5 hottest directed edges in the run summary. --report=FILE.json
// writes the structured run report (sim/run_report.hpp, schema v1):
// counters, profile, imbalance, fault/recovery section, schedule-cache
// stats and the flight-recorder tail. The flight recorder itself is
// always on — every run carries a small trace ring (crash-buffer sized
// unless --trace/--profile grows it), and a run that dies with
// SimError/FaultError still writes its report for post-mortem reading.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <optional>
#include <string_view>

#include <sys/resource.h>

#include "collectives/broadcast.hpp"
#include "collectives/ft_broadcast.hpp"
#include "collectives/reduce.hpp"
#include "core/dual_prefix.hpp"
#include "core/ft_dual_prefix.hpp"
#include "core/ft_dual_sort.hpp"
#include "core/sharded_prefix.hpp"
#include "core/dual_sort.hpp"
#include "core/enumeration_sort.hpp"
#include "core/formulas.hpp"
#include "core/radix_sort.hpp"
#include "core/sequential.hpp"
#include "sim/fault_transport.hpp"
#include "sim/faults.hpp"
#include "sim/metrics.hpp"
#include "sim/profile.hpp"
#include "sim/recovery.hpp"
#include "sim/run_report.hpp"
#include "sim/schedule_store.hpp"
#include "sim/store_forward.hpp"
#include "sim/trace.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "topology/routing.hpp"

namespace {

using dc::u64;
using dc::net::NodeId;

dc::sim::SchedulePath g_schedule = dc::sim::SchedulePath::kCompiled;

// Shared by every machine the run constructs (warm-up and measured), so
// record and replay land on separate tracks of one timeline. Always
// non-null after flag parsing: without --trace/--profile it is the
// crash-buffer-sized flight recorder, with them a full-capacity recorder.
std::unique_ptr<dc::sim::TraceRecorder> g_trace;

// Non-null with --profile: per-cycle imbalance telemetry, critical-path
// attribution and hot-edge ranking for the measured run.
std::unique_ptr<dc::sim::CycleProfiler> g_profiler;

// The structured run report, filled incrementally by the run paths and
// serialized at exit (--report=FILE.json) or on SimError/FaultError.
dc::sim::RunReport g_report;

/// Applies the process-wide run configuration to a machine: the schedule
/// path, a trace track labelled `label`, and — for the measured machine
/// under --profile — the cycle profiler plus per-edge load accounting.
void setup_machine(dc::sim::Machine& m, const std::string& label) {
  m.set_schedule_path(g_schedule);
  if (g_trace) m.set_trace(g_trace.get(), label);
  if (g_profiler && label == "measured") {
    m.attach_profiler(g_profiler.get());
    m.enable_edge_load();
  }
}

/// One-table end-of-run summary: schedule-cache statistics plus this
/// machine's fault counters (degrade-policy runs used to scatter these
/// across prints). Also publishes the machine's gauges into the metrics
/// registry, so a --metrics report reflects the measured run.
void print_run_summary(const dc::sim::Machine& m) {
  const auto cache = dc::sim::ScheduleCache::instance().stats();
  const auto c = m.counters();
  dc::Table t("run summary");
  t.header({"metric", "value"});
  t.add("schedule cache entries", cache.entries);
  t.add("schedule cache bytes", cache.bytes);
  t.add("schedule cache hits", cache.hits);
  t.add("schedule cache misses", cache.misses);
  t.add("schedule cache evictions", cache.evictions);
  if (dc::sim::ScheduleCache::instance().has_store()) {
    t.add("schedule disk hits", cache.disk_hits);
    t.add("schedule disk misses", cache.disk_misses);
    t.add("schedule disk bytes mapped", cache.disk_bytes_mapped);
  }
  t.add("messages lost to faults", c.messages_lost);
  t.add("messages rerouted", c.messages_rerouted);
  t.add("fault-active cycles", c.fault_cycles);
  std::cout << t;
  if (m.edge_load_enabled()) {
    const std::vector<u64> loads = m.edge_load_merged();
    if (g_profiler) g_profiler->note_edge_loads(loads);
    const auto hot = dc::sim::top_k_hot_edges(
        m.topology().flat_adjacency(), loads, 5);
    dc::Table h("hottest directed edges");
    h.header({"edge", "messages"});
    for (const auto& e : hot)
      h.add(std::to_string(e.u) + " -> " + std::to_string(e.v), e.load);
    std::cout << h;
    g_report.hot_edges = hot;
  }
  m.publish_metrics();

  // Report assembly: this machine is the measured run, so its counters,
  // cache snapshot and fault observations are the report's.
  g_report.counters = c;
  g_report.cache = cache;
  g_report.reconciled = {"measured"};
  if (g_profiler) {
    g_report.has_imbalance = true;
    g_report.imbalance = g_profiler->summary();
  }
  g_report.fault.active = g_report.fault.active || m.has_faults();
  g_report.fault.epochs = m.fault_epochs_seen();
  g_report.fault.rejoins = m.fault_rejoins();
}

void print_schedule_path(const dc::sim::Machine& m) {
  if (m.replayed_cycles() > 0) {
    std::cout << "schedule path: compiled (replayed " << m.replayed_cycles()
              << " cycles)\n";
  } else if (m.schedule_path() == dc::sim::SchedulePath::kCompiled) {
    std::cout << "schedule path: compiled (recorded; cached for replay)\n";
  } else {
    std::cout << "schedule path: interpreted\n";
  }
}

void print_counters(const dc::sim::Counters& c) {
  dc::Table t("model step counters");
  t.header({"counter", "value"});
  t.add("communication cycles", c.comm_cycles);
  t.add("computation steps", c.comp_steps);
  t.add("messages delivered", c.messages);
  t.add("op applications", c.ops);
  if (c.messages_lost > 0) t.add("messages lost", c.messages_lost);
  if (c.messages_rerouted > 0) t.add("messages rerouted", c.messages_rerouted);
  if (c.fault_cycles > 0) t.add("fault-active cycles", c.fault_cycles);
  std::cout << t;
}

void print_fault_report(const dc::sim::FaultPlan& plan,
                        const dc::sim::FtReport& rep,
                        dc::sim::FaultPolicy policy) {
  dc::Table t("graceful degradation report");
  t.header({"metric", "value"});
  t.add("policy", policy == dc::sim::FaultPolicy::kStrict ? "strict"
                                                          : "degrade");
  t.add("node faults", plan.node_fault_count());
  t.add("link faults", plan.link_fault_count());
  t.add("healthy-schedule cycles", rep.base_cycles);
  t.add("repair cycles", rep.repair_cycles);
  t.add("messages repaired by detour", rep.repaired);
  t.add("extra hops beyond one link", rep.rerouted_hops);
  t.add("BFS fallback routes", rep.bfs_fallbacks);
  std::cout << t;
  const auto dead = plan.dead_nodes();
  std::cout << "dead nodes:";
  for (const auto u : dead) std::cout << ' ' << u;
  std::cout << "\n";
}

int run_prefix(unsigned n, const std::string& op_name, u64 seed) {
  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  setup_machine(m, "measured");
  dc::Rng rng(seed);
  std::vector<u64> data(d.node_count());
  for (auto& x : data) x = rng.below(1000);

  std::vector<u64> out;
  std::vector<u64> expected;
  const auto run_with = [&](const auto& op) {
    if (g_schedule == dc::sim::SchedulePath::kCompiled) {
      // Warm-up records and caches the schedule so the reported run replays.
      dc::sim::Machine warm(d);
      setup_machine(warm, "warm-up");
      (void)dc::core::dual_prefix(warm, d, op, data);
    }
    out = dc::core::dual_prefix(m, d, op, data);
    expected = dc::core::seq_inclusive_scan(op, data);
  };
  if (op_name == "plus") {
    run_with(dc::core::Plus<u64>{});
  } else if (op_name == "min") {
    run_with(dc::core::Min<u64>{});
  } else if (op_name == "max") {
    run_with(dc::core::Max<u64>{});
  } else if (op_name == "xor") {
    run_with(dc::core::Xor<u64>{});
  } else {
    std::cout << "unknown --op '" << op_name << "' (plus|min|max|xor)\n";
    return 2;
  }
  const bool ok = out == expected;
  std::cout << "D_prefix(" << op_name << ") on " << d.name() << ": "
            << (ok ? "correct" : "WRONG") << "; last prefix = " << out.back()
            << "\n";
  print_counters(m.counters());
  print_schedule_path(m);
  print_run_summary(m);
  std::cout << "Theorem 1 bounds: comm <= "
            << dc::core::formulas::dual_prefix_comm_paper(n) << ", comp <= "
            << dc::core::formulas::dual_prefix_comp(n) << "\n";
  return ok ? 0 : 1;
}

/// Kernel-measured peak resident set of this process, in bytes (Linux
/// reports ru_maxrss in kilobytes).
std::size_t peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;
}

int run_sharded_prefix(unsigned n, const std::string& op_name, unsigned shards,
                       std::size_t budget, u64 seed,
                       const std::string& timeline_spec) {
  const dc::net::DualCube d(n);
  dc::sim::ShardEngine eng(d, shards, budget);
  for (unsigned k = 0; k < shards; ++k)
    eng.machine(k).set_schedule_path(g_schedule);
  if (g_trace) eng.set_trace(g_trace.get());
  // Shards run lock-stepped cycles sequentially under the host, so one
  // profiler observes every shard's cycles without racing.
  if (g_profiler) eng.attach_profiler(g_profiler.get());
  // Sharded runs take the timeline under kDegrade only (the host-side
  // cross-cluster exchange cannot retry a shard mid-cycle): the engine
  // localizes node events to their home shard, rejects cross-cluster link
  // faults, and applies drop windows everywhere with decorrelated seeds.
  // The run becomes a fault-injection demo — diverged stream values are
  // counted, not failed.
  const bool faulted = !timeline_spec.empty();
  if (faulted) {
    const auto tl = dc::sim::parse_fault_timeline(timeline_spec, d, seed);
    eng.attach_fault_timeline(tl, dc::sim::FaultPolicy::kDegrade);
  }

  // Streaming input: a stateless per-index generator, so no global data
  // vector ever exists — the only O(N) state is the result store, and with
  // a tight --mem-budget not even that stays resident.
  const auto data_of = [seed](u64 i) -> u64 {
    u64 x = i + seed * 0x9E3779B97F4A7C15ull;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    return x % 1000;
  };

  // Streaming verification: the sink receives ascending slices tiling
  // [0, N), so one running accumulator checks every prefix as it streams
  // past without materializing the expected vector.
  bool ok = true;
  u64 last = 0;
  std::size_t diverged = 0;
  const auto run_with = [&](const auto& op) {
    u64 acc = op.identity();
    u64 next_base = 0;
    dc::core::sharded_dual_prefix(
        eng, op, data_of,
        [&](u64 base, const u64* values, std::size_t count) {
          ok = ok && base == next_base;
          for (std::size_t t = 0; t < count; ++t) {
            acc = op.combine(acc, data_of(base + t));
            if (values[t] != acc) ++diverged;
          }
          next_base = base + count;
          if (count > 0) last = values[count - 1];
        });
    ok = ok && next_base == d.node_count();
    // Healthy runs must stream exactly; faulted degrade runs report the
    // divergence instead of failing (dropped messages lose prefix terms).
    ok = ok && (faulted || diverged == 0);
  };
  if (op_name == "plus") {
    run_with(dc::core::Plus<u64>{});
  } else if (op_name == "min") {
    run_with(dc::core::Min<u64>{});
  } else if (op_name == "max") {
    run_with(dc::core::Max<u64>{});
  } else if (op_name == "xor") {
    run_with(dc::core::Xor<u64>{});
  } else {
    std::cout << "unknown --op '" << op_name << "' (plus|min|max|xor)\n";
    return 2;
  }

  const auto& st = eng.stats();
  std::cout << "sharded D_prefix(" << op_name << ") on " << d.name() << " ("
            << d.node_count() << " nodes, " << shards << " shards): "
            << (ok ? "stream verified" : "WRONG") << "; last prefix = " << last
            << "\n";
  if (faulted) {
    std::cout << "faulted stream (degrade): " << diverged << " of "
              << d.node_count() << " values diverged from the healthy scan\n";
  }
  dc::Table t("sharded memory model");
  t.header({"metric", "value"});
  t.add("shards", shards);
  t.add("nodes per shard", eng.shard_nodes());
  t.add("memory budget bytes", budget);
  t.add("working bytes / shard", eng.working_bytes(sizeof(u64)));
  t.add("result store bytes", eng.store_bytes(sizeof(u64)));
  t.add("predicted resident bytes", eng.predicted_resident_bytes(sizeof(u64)));
  t.add("spilled", st.last_run_spilled ? "yes" : "no");
  t.add("out of core (streamed cycles)",
        st.last_run_out_of_core ? "yes" : "no");
  t.add("spill slices written", st.spill_count);
  t.add("spill bytes", st.spill_bytes);
  t.add("cross-edge exchange bytes", st.cross_edge_bytes);
  t.add("peak RSS bytes (process)", peak_rss_bytes());
  std::cout << t;
  print_counters(eng.counters());
  eng.publish_metrics();

  // Report assembly: executed cycles live on shard 0's track, the
  // virtualized cross/distribution booking is reported separately so
  // report-validate can reconcile track totals + virtual == counters.
  g_report.counters = eng.counters();
  g_report.has_virtual = true;
  g_report.virtual_counters = eng.virtual_counters();
  g_report.reconciled = {"shards/shard0"};
  g_report.cache = dc::sim::ScheduleCache::instance().stats();
  if (g_profiler) {
    g_report.has_imbalance = true;
    g_report.imbalance = g_profiler->summary();
  }
  g_report.fault.active = faulted;
  if (faulted) {
    u64 epochs = 0;
    u64 rejoins = 0;
    for (unsigned k = 0; k < shards; ++k) {
      epochs = std::max(epochs, eng.machine(k).fault_epochs_seen());
      rejoins += eng.machine(k).fault_rejoins();
    }
    g_report.fault.epochs = epochs;
    g_report.fault.rejoins = rejoins;
  }
  std::cout << "Theorem 1 bounds: comm <= "
            << dc::core::formulas::dual_prefix_comm_paper(n) << ", comp <= "
            << dc::core::formulas::dual_prefix_comp(n) << "\n";
  return ok ? 0 : 1;
}

int run_sort(unsigned n, const std::string& dist_name, u64 seed) {
  const dc::net::RecursiveDualCube r(n);
  dc::sim::Machine m(r);
  setup_machine(m, "measured");
  dc::KeyDistribution dist = dc::KeyDistribution::kUniform;
  for (const auto d : dc::all_key_distributions())
    if (dc::to_string(d) == dist_name) dist = d;
  auto keys = dc::generate_keys(dist, r.node_count(), seed);
  if (g_schedule == dc::sim::SchedulePath::kCompiled) {
    dc::sim::Machine warm(r);
    setup_machine(warm, "warm-up");
    auto warm_keys = keys;
    dc::core::dual_sort(warm, r, warm_keys);
  }
  dc::core::dual_sort(m, r, keys);
  const bool ok = std::is_sorted(keys.begin(), keys.end());
  std::cout << "D_sort on " << r.name() << " (" << dc::to_string(dist)
            << "): " << (ok ? "sorted" : "NOT SORTED") << "\n";
  print_counters(m.counters());
  print_schedule_path(m);
  print_run_summary(m);
  std::cout << "Theorem 2 exact: comm = "
            << dc::core::formulas::dual_sort_comm_exact(n) << ", comp = "
            << dc::core::formulas::dual_sort_comp_exact(n) << "\n";
  return ok ? 0 : 1;
}

int run_radix(unsigned n, unsigned bits, u64 seed) {
  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  setup_machine(m, "measured");
  dc::Rng rng(seed);
  std::vector<u64> keys(d.node_count());
  for (auto& k : keys) k = rng.below(dc::bits::pow2(bits));
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  const auto stats = dc::core::radix_sort(m, d, keys, bits);
  const bool ok = keys == expected;
  std::cout << "radix sort (" << bits << "-bit keys) on " << d.name() << ": "
            << (ok ? "sorted" : "NOT SORTED") << " in " << stats.passes
            << " passes (" << stats.routing_cycles << " routing cycles)\n";
  print_counters(m.counters());
  print_run_summary(m);
  return ok ? 0 : 1;
}

int run_enum(unsigned n, u64 seed) {
  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  setup_machine(m, "measured");
  auto keys = dc::generate_keys(dc::KeyDistribution::kUniform,
                                d.node_count(), seed);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  const auto report = dc::core::enumeration_sort(m, d, keys);
  const bool ok = keys == expected;
  std::cout << "enumeration sort on " << d.name() << ": "
            << (ok ? "sorted" : "NOT SORTED") << "; placement drain "
            << report.cycles << " cycles\n";
  print_counters(m.counters());
  print_run_summary(m);
  return ok ? 0 : 1;
}

int run_broadcast(unsigned n, NodeId root) {
  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  setup_machine(m, "measured");
  if (g_schedule == dc::sim::SchedulePath::kCompiled) {
    dc::sim::Machine warm(d);
    setup_machine(warm, "warm-up");
    (void)dc::collectives::dual_broadcast<u64>(warm, d, root, 42);
  }
  const auto out = dc::collectives::dual_broadcast<u64>(m, d, root, 42);
  const bool ok =
      std::all_of(out.begin(), out.end(), [](u64 v) { return v == 42; });
  std::cout << "broadcast from node " << root << " on " << d.name() << ": "
            << (ok ? "complete" : "INCOMPLETE") << "\n";
  print_counters(m.counters());
  print_schedule_path(m);
  print_run_summary(m);
  std::cout << "diameter: " << d.diameter() << "\n";
  return ok ? 0 : 1;
}

int run_allreduce(unsigned n, u64 seed) {
  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  setup_machine(m, "measured");
  dc::Rng rng(seed);
  std::vector<u64> values(d.node_count());
  for (auto& v : values) v = rng.below(100);
  const u64 expected = std::accumulate(values.begin(), values.end(), u64{0});
  const dc::core::Plus<u64> op;
  if (g_schedule == dc::sim::SchedulePath::kCompiled) {
    dc::sim::Machine warm(d);
    setup_machine(warm, "warm-up");
    (void)dc::collectives::dual_allreduce(warm, d, op, values);
  }
  const auto out = dc::collectives::dual_allreduce(m, d, op, values);
  const bool ok = std::all_of(out.begin(), out.end(),
                              [&](u64 v) { return v == expected; });
  std::cout << "allreduce(+) on " << d.name() << ": "
            << (ok ? "agrees everywhere" : "DISAGREES") << "; total "
            << expected << "\n";
  print_counters(m.counters());
  print_schedule_path(m);
  print_run_summary(m);
  return ok ? 0 : 1;
}

int run_ft_prefix(unsigned n, const std::string& op_name, u64 seed,
                  const dc::sim::FaultPlan& plan,
                  dc::sim::FaultPolicy policy) {
  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  setup_machine(m, "measured");
  m.attach_faults(std::make_shared<dc::sim::FaultPlan>(plan), policy);
  dc::Rng rng(seed);
  std::vector<u64> data(d.node_count());
  for (auto& x : data) x = rng.below(1000);

  // Which prefix-order indices lost their input with the node that owned
  // them: those contribute the identity and report no output.
  std::vector<bool> dead_index(d.node_count(), false);
  for (const auto u : plan.dead_nodes())
    dead_index[dc::core::dual_prefix_index_of_node(d, u)] = true;

  std::vector<std::optional<u64>> out;
  std::vector<u64> expected;
  dc::sim::FtReport rep;
  const auto run_with = [&](const auto& op) {
    out = dc::core::ft_dual_prefix(m, d, op, data, plan,
                                   /*inclusive=*/true, &rep);
    u64 acc = op.identity();
    expected.resize(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (!dead_index[i]) acc = op.combine(acc, data[i]);
      expected[i] = acc;
    }
  };
  if (op_name == "plus") {
    run_with(dc::core::Plus<u64>{});
  } else if (op_name == "min") {
    run_with(dc::core::Min<u64>{});
  } else if (op_name == "max") {
    run_with(dc::core::Max<u64>{});
  } else if (op_name == "xor") {
    run_with(dc::core::Xor<u64>{});
  } else {
    std::cout << "unknown --op '" << op_name << "' (plus|min|max|xor)\n";
    return 2;
  }
  bool ok = true;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (dead_index[i]) {
      ok = ok && !out[i].has_value();
    } else {
      ok = ok && out[i].has_value() && *out[i] == expected[i];
    }
  }
  std::cout << "fault-tolerant D_prefix(" << op_name << ") on " << d.name()
            << ": " << (ok ? "correct on every live node" : "WRONG") << "\n";
  print_fault_report(plan, rep, policy);
  print_counters(m.counters());
  print_run_summary(m);
  return ok ? 0 : 1;
}

int run_ft_broadcast(unsigned n, NodeId root, const dc::sim::FaultPlan& plan,
                     dc::sim::FaultPolicy policy) {
  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  setup_machine(m, "measured");
  m.attach_faults(std::make_shared<dc::sim::FaultPlan>(plan), policy);
  dc::sim::FtReport rep;
  const auto out =
      dc::collectives::ft_dual_broadcast<u64>(m, d, root, 42, plan, &rep);
  bool ok = true;
  constexpr std::uint64_t kEver = ~std::uint64_t{0};
  for (NodeId u = 0; u < d.node_count(); ++u) {
    if (plan.node_dead(u, kEver)) {
      ok = ok && !out[u].has_value();
    } else {
      ok = ok && out[u].has_value() && *out[u] == 42;
    }
  }
  std::cout << "fault-tolerant broadcast from node " << root << " on "
            << d.name() << ": "
            << (ok ? "reached every live node" : "INCOMPLETE") << "\n";
  print_fault_report(plan, rep, policy);
  print_counters(m.counters());
  print_run_summary(m);
  return ok ? 0 : 1;
}

int run_ft_sort(unsigned n, const std::string& dist_name, u64 seed,
                const dc::sim::FaultPlan& plan, dc::sim::FaultPolicy policy) {
  const dc::net::RecursiveDualCube r(n);
  dc::sim::Machine m(r);
  setup_machine(m, "measured");
  m.attach_faults(std::make_shared<dc::sim::FaultPlan>(plan), policy);
  dc::KeyDistribution dist = dc::KeyDistribution::kUniform;
  for (const auto kd : dc::all_key_distributions())
    if (dc::to_string(kd) == dist_name) dist = kd;
  const auto keys = dc::generate_keys(dist, r.node_count(), seed);
  dc::sim::FtReport rep;
  const auto out =
      dc::core::ft_dual_sort(m, r, keys, plan, /*descending=*/false, &rep);
  // Dead nodes' keys are lost with them; every surviving key ends up
  // sorted into the leading labels, the holes trail.
  constexpr std::uint64_t kEver = ~std::uint64_t{0};
  std::vector<u64> expected;
  expected.reserve(keys.size());
  for (NodeId u = 0; u < r.node_count(); ++u)
    if (!plan.node_dead(u, kEver)) expected.push_back(keys[u]);
  std::sort(expected.begin(), expected.end());
  bool ok = true;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i < expected.size()) {
      ok = ok && out[i].has_value() && *out[i] == expected[i];
    } else {
      ok = ok && !out[i].has_value();
    }
  }
  std::cout << "fault-tolerant D_sort on " << r.name() << " ("
            << dc::to_string(dist) << "): "
            << (ok ? "survivor keys sorted" : "WRONG") << "; "
            << expected.size() << " of " << r.node_count()
            << " keys survive\n";
  print_fault_report(plan, rep, policy);
  print_counters(m.counters());
  print_run_summary(m);
  return ok ? 0 : 1;
}

int run_with_faults(const std::string& algo, unsigned n,
                    const std::string& spec, const std::string& policy_name,
                    const std::string& op, const std::string& dist,
                    NodeId root, u64 seed) {
  dc::sim::FaultPolicy policy = dc::sim::FaultPolicy::kStrict;
  if (policy_name == "degrade") {
    policy = dc::sim::FaultPolicy::kDegrade;
  } else if (policy_name != "strict") {
    std::cout << "unknown --fault-policy '" << policy_name
              << "' (strict|degrade)\n";
    return 2;
  }
  if (algo != "prefix" && algo != "broadcast" && algo != "sort") {
    std::cout << "--faults supports only --algo=prefix|broadcast|sort (got '"
              << algo << "')\n";
    return 2;
  }
  // The sort runs on the recursive dual-cube; parse the spec against the
  // topology the algorithm will actually see so node-range errors name it.
  const dc::net::DualCube d(n);
  const dc::net::RecursiveDualCube r(n);
  const dc::net::Topology& topo =
      (algo == "sort") ? static_cast<const dc::net::Topology&>(r)
                       : static_cast<const dc::net::Topology&>(d);
  dc::sim::FaultPlan plan;
  try {
    plan = dc::sim::parse_fault_spec(spec, topo, seed);
  } catch (const dc::CheckError& e) {
    std::cout << "bad --faults spec: " << e.what() << "\n";
    return 2;
  }
  if (policy == dc::sim::FaultPolicy::kStrict &&
      plan.node_fault_count() >= n) {
    std::cout << "strict policy covers only fewer than n=" << n
              << " node faults (" << topo.name() << " is " << n
              << "-connected); got " << plan.node_fault_count()
              << ". Use --fault-policy=degrade to attempt the run anyway.\n";
    return 2;
  }
  constexpr std::uint64_t kEver = ~std::uint64_t{0};
  if (algo == "broadcast" && plan.node_dead(root, kEver)) {
    std::cout << "fault spec kills the broadcast root " << root
              << "; pick a live --root\n";
    return 2;
  }
  try {
    if (algo == "prefix") return run_ft_prefix(n, op, seed, plan, policy);
    if (algo == "sort") return run_ft_sort(n, dist, seed, plan, policy);
    return run_ft_broadcast(n, root, plan, policy);
  } catch (const dc::sim::FaultError& e) {
    std::cout << "fault-tolerant run failed: " << e.what() << "\n";
    g_report.status = "fault_error";
    g_report.error = e.what();
    return 1;
  }
}

/// One-table view of what the self-healing driver actually did, plus the
/// machine's timeline observations (epochs/rejoins) for the same run.
void print_recovery_report(const dc::sim::RecoveryDriver& drv,
                           const dc::sim::Machine& m) {
  const auto& rep = drv.report();
  dc::Table t("self-healing report");
  t.header({"metric", "value"});
  t.add("timeline epochs", drv.timeline().epoch_count());
  t.add("fault epochs observed", m.fault_epochs_seen());
  t.add("node rejoins observed", m.fault_rejoins());
  t.add("phases", rep.phases);
  t.add("attempts", rep.attempts);
  t.add("retries", rep.retries);
  t.add("replans", rep.replans);
  t.add("restarts", rep.restarts);
  t.add("backoff cycles paid", rep.backoff_cycles);
  t.add("degraded finish", rep.degraded ? "yes" : "no");
  t.add("messages repaired by detour", rep.transport.repaired);
  t.add("extra hops beyond one link", rep.transport.rerouted_hops);
  t.add("BFS fallback routes", rep.transport.bfs_fallbacks);
  std::cout << t;

  g_report.fault.active = true;
  g_report.fault.retries = rep.retries;
  g_report.fault.replans = rep.replans;
  g_report.fault.backoff_cycles = rep.backoff_cycles;
  g_report.fault.current_epoch =
      drv.timeline().epoch_of(m.counters().comm_cycles);
  g_report.fault.epoch_starts = drv.timeline().epoch_starts();
}

/// Rejects timelines whose peak simultaneous node-fault count breaks the
/// n-connectivity guarantee when the run has no degrade fallback.
bool timeline_within_bound(const dc::sim::FaultTimeline& tl, unsigned n,
                           const dc::sim::RetryPolicy& rp) {
  if (rp.degrade_on_exhaustion) return true;
  const std::size_t peak = tl.max_concurrent_node_faults();
  if (peak < n) return true;
  std::cout << "strict policy covers only fewer than n=" << n
            << " concurrent node faults; the timeline peaks at " << peak
            << ". Use --fault-policy=degrade to attempt the run anyway.\n";
  return false;
}

int run_resilient_prefix(unsigned n, const std::string& op_name, u64 seed,
                         const std::string& spec,
                         const dc::sim::RetryPolicy& rp) {
  const dc::net::DualCube d(n);
  const auto tl = std::make_shared<const dc::sim::FaultTimeline>(
      dc::sim::parse_fault_timeline(spec, d, seed));
  if (!timeline_within_bound(*tl, n, rp)) return 2;
  dc::sim::Machine m(d);
  setup_machine(m, "measured");
  dc::Rng rng(seed);
  std::vector<u64> data(d.node_count());
  for (auto& x : data) x = rng.below(1000);

  int rc = 2;
  dc::sim::RecoveryDriver drv(m, tl, rp);
  const auto run_with = [&](const auto& op) {
    const auto out = dc::sim::resilient_dual_prefix(drv, d, op, data);
    // Self-consistent check: holes are the slots the final epoch's plan
    // masked out; every live slot must carry the scan over live inputs.
    bool ok = true;
    std::size_t holes = 0;
    u64 acc = op.identity();
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (!out[i].has_value()) {
        ++holes;
        continue;
      }
      acc = op.combine(acc, data[i]);
      ok = ok && *out[i] == acc;
    }
    std::cout << "self-healing D_prefix(" << op_name << ") on " << d.name()
              << ": " << (ok ? "correct on every live slot" : "WRONG")
              << "; " << holes << " dead slots\n";
    rc = ok ? 0 : 1;
  };
  if (op_name == "plus") {
    run_with(dc::core::Plus<u64>{});
  } else if (op_name == "min") {
    run_with(dc::core::Min<u64>{});
  } else if (op_name == "max") {
    run_with(dc::core::Max<u64>{});
  } else if (op_name == "xor") {
    run_with(dc::core::Xor<u64>{});
  } else {
    std::cout << "unknown --op '" << op_name << "' (plus|min|max|xor)\n";
    return 2;
  }
  print_recovery_report(drv, m);
  print_counters(m.counters());
  print_run_summary(m);
  return rc;
}

int run_resilient_broadcast(unsigned n, NodeId root, u64 seed,
                            const std::string& spec,
                            const dc::sim::RetryPolicy& rp) {
  const dc::net::DualCube d(n);
  const auto tl = std::make_shared<const dc::sim::FaultTimeline>(
      dc::sim::parse_fault_timeline(spec, d, seed));
  if (!timeline_within_bound(*tl, n, rp)) return 2;
  for (const auto& ev : tl->node_events()) {
    if (ev.node == root) {
      std::cout << "fault timeline kills the broadcast root " << root
                << "; pick a live --root\n";
      return 2;
    }
  }
  dc::sim::Machine m(d);
  setup_machine(m, "measured");
  dc::sim::RecoveryDriver drv(m, tl, rp);
  const auto out = dc::sim::resilient_dual_broadcast(drv, d, root, u64{42});
  bool ok = true;
  std::size_t holes = 0;
  for (const auto& v : out) {
    if (v.has_value()) {
      ok = ok && *v == 42;
    } else {
      ++holes;
    }
  }
  std::cout << "self-healing broadcast from node " << root << " on "
            << d.name() << ": "
            << (ok ? "value on every live node" : "WRONG") << "; " << holes
            << " dead nodes\n";
  print_recovery_report(drv, m);
  print_counters(m.counters());
  print_run_summary(m);
  return ok ? 0 : 1;
}

int run_resilient_sort(unsigned n, const std::string& dist_name, u64 seed,
                       const std::string& spec,
                       const dc::sim::RetryPolicy& rp) {
  const dc::net::RecursiveDualCube r(n);
  const auto tl = std::make_shared<const dc::sim::FaultTimeline>(
      dc::sim::parse_fault_timeline(spec, r, seed));
  if (!timeline_within_bound(*tl, n, rp)) return 2;
  dc::sim::Machine m(r);
  setup_machine(m, "measured");
  dc::KeyDistribution dist = dc::KeyDistribution::kUniform;
  for (const auto kd : dc::all_key_distributions())
    if (dc::to_string(kd) == dist_name) dist = kd;
  const auto keys = dc::generate_keys(dist, r.node_count(), seed);

  dc::sim::RecoveryDriver drv(m, tl, rp);
  const auto out = dc::core::resilient_dual_sort(drv, r, keys);
  // Survivor keys occupy the leading labels in sorted order; holes trail.
  // A mid-run death loses only that node's key, so the survivors must be
  // a sub-multiset of the input.
  std::size_t live = 0;
  while (live < out.size() && out[live].has_value()) ++live;
  bool ok = true;
  std::vector<u64> got;
  got.reserve(live);
  for (std::size_t i = 0; i < live; ++i) got.push_back(*out[i]);
  for (std::size_t i = live; i < out.size(); ++i)
    ok = ok && !out[i].has_value();
  ok = ok && std::is_sorted(got.begin(), got.end());
  auto pool = keys;
  std::sort(pool.begin(), pool.end());
  ok = ok && std::includes(pool.begin(), pool.end(), got.begin(), got.end());
  std::cout << "self-healing D_sort on " << r.name() << " ("
            << dc::to_string(dist) << "): "
            << (ok ? "survivor keys sorted" : "WRONG") << "; " << live
            << " of " << r.node_count() << " keys survive\n";
  print_recovery_report(drv, m);
  print_counters(m.counters());
  print_run_summary(m);
  return ok ? 0 : 1;
}

int run_with_timeline(const std::string& algo, unsigned n,
                      const std::string& spec, const std::string& policy_name,
                      const std::string& op, const std::string& dist,
                      NodeId root, u64 seed, std::size_t retry_budget) {
  dc::sim::RetryPolicy rp;
  rp.retry_budget = retry_budget;
  if (policy_name == "strict") {
    rp.degrade_on_exhaustion = false;
  } else if (policy_name == "degrade") {
    rp.degrade_on_exhaustion = true;
  } else {
    std::cout << "unknown --fault-policy '" << policy_name
              << "' (strict|degrade)\n";
    return 2;
  }
  try {
    if (algo == "prefix") return run_resilient_prefix(n, op, seed, spec, rp);
    if (algo == "broadcast")
      return run_resilient_broadcast(n, root, seed, spec, rp);
    if (algo == "sort") return run_resilient_sort(n, dist, seed, spec, rp);
    std::cout << "--fault-timeline supports only --algo=prefix|broadcast|sort"
              << " (got '" << algo << "')\n";
    return 2;
  } catch (const dc::sim::FaultError& e) {
    std::cout << "self-healing run failed (retry budget " << retry_budget
              << " exhausted under strict): " << e.what() << "\n";
    g_report.status = "fault_error";
    g_report.error = e.what();
    return 1;
  } catch (const dc::CheckError& e) {
    std::cout << "bad --fault-timeline spec: " << e.what() << "\n";
    return 2;
  }
}

int run_route(unsigned n, const std::string& pattern, u64 seed) {
  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  setup_machine(m, "measured");
  const std::size_t N = d.node_count();
  std::vector<NodeId> dest(N);
  if (pattern == "random") {
    std::iota(dest.begin(), dest.end(), 0);
    dc::Rng rng(seed);
    for (std::size_t i = N; i-- > 1;) std::swap(dest[i], dest[rng.below(i + 1)]);
  } else if (pattern == "complement") {
    for (NodeId u = 0; u < N; ++u) dest[u] = N - 1 - u;
  } else if (pattern == "cross") {
    for (NodeId u = 0; u < N; ++u) dest[u] = d.cross_neighbor(u);
  } else {
    std::cout << "unknown --pattern '" << pattern
              << "' (random|complement|cross)\n";
    return 2;
  }
  const auto report = dc::sim::route_packets(m, dest, [&](NodeId s, NodeId v) {
    return dc::net::route_dual_cube(d, s, v);
  });
  dc::Table t("routing report (" + pattern + ")");
  t.header({"metric", "value"});
  t.add("packets", report.packets);
  t.add("drain cycles", report.cycles);
  t.add("total hops", report.total_hops);
  t.add("avg latency", report.avg_latency);
  t.add("max queue", report.max_queue);
  std::cout << t;
  print_run_summary(m);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dc::Cli cli(argc, argv);
  const std::string algo = cli.get_string("algo", "prefix");
  const unsigned n = static_cast<unsigned>(cli.get_int("n", 3));
  const u64 seed = static_cast<u64>(cli.get_int("seed", 1));
  const std::string op = cli.get_string("op", "plus");
  const std::string dist = cli.get_string("dist", "uniform");
  const unsigned bits = static_cast<unsigned>(cli.get_int("bits", 8));
  const NodeId root = static_cast<NodeId>(cli.get_int("root", 0));
  const std::string pattern = cli.get_string("pattern", "random");
  const std::string faults = cli.get_string("faults", "");
  const std::string fault_policy = cli.get_string("fault-policy", "strict");
  const std::string fault_timeline = cli.get_string("fault-timeline", "");
  const std::size_t retry_budget =
      static_cast<std::size_t>(cli.get_int("retry-budget", 8));
  const unsigned shards = static_cast<unsigned>(cli.get_int("shards", 0));
  const std::size_t mem_budget =
      static_cast<std::size_t>(cli.get_int("mem-budget", 0));
  const std::string trace_file = cli.get_string("trace", "");
  // Bare --profile parses as "true": attach the cycle profiler.
  const bool profile = !cli.get_string("profile", "").empty();
  const std::string report_file = cli.get_string("report", "");
  // Bare --metrics parses as "true"; table is the human default.
  const std::string metrics = cli.get_string("metrics", "");
  // The flag's default follows the process-wide DC_SCHEDULE override so
  // the environment variable keeps working when --schedule is not given.
  const char* env = std::getenv("DC_SCHEDULE");
  const std::string schedule = cli.get_string(
      "schedule", env && std::string_view(env) == "interpreted"
                      ? "interpreted"
                      : "compiled");
  // Persistent schedule store: --schedule-cache=DIR, defaulting to the
  // DC_SCHEDULE_CACHE environment variable (empty = no persistence).
  const char* cache_env = std::getenv("DC_SCHEDULE_CACHE");
  const std::string schedule_cache =
      cli.get_string("schedule-cache", cache_env ? cache_env : "");
  cli.finish();

  if (schedule == "compiled") {
    g_schedule = dc::sim::SchedulePath::kCompiled;
  } else if (schedule == "interpreted") {
    g_schedule = dc::sim::SchedulePath::kInterpreted;
  } else {
    std::cout << "unknown --schedule '" << schedule
              << "' (compiled|interpreted)\n";
    return 2;
  }

  if (!schedule_cache.empty()) {
    const auto store = dc::sim::attach_schedule_store(schedule_cache);
    if (!store->enabled()) {
      // Unusable directory: warn and run without persistence — the store
      // degrades every load/save to a miss/no-op by construction.
      std::cout << "warning: schedule cache directory '" << schedule_cache
                << "' is not usable; running without persistence\n";
    } else {
      std::cout << "schedule cache: " << store->directory() << "\n";
    }
  }

  dc::sim::MetricsFormat metrics_fmt = dc::sim::MetricsFormat::kTable;
  if (metrics == "json") {
    metrics_fmt = dc::sim::MetricsFormat::kJson;
  } else if (!metrics.empty() && metrics != "true" && metrics != "table") {
    std::cout << "unknown --metrics '" << metrics << "' (table|json)\n";
    return 2;
  }
  // Arm before any machine is constructed: machines (and the profiler)
  // resolve their metric targets at construction time.
  if (!metrics.empty()) dc::sim::MetricsRegistry::arm();
  // The flight recorder is always on: without --trace/--profile the rings
  // are small crash buffers (newest events only), with either flag they
  // grow to full trace capacity so nothing drops and the profile can
  // reconcile against the counters.
  const std::size_t trace_slots = dc::ThreadPool::shared().size() + 1;
  if (!trace_file.empty() || profile) {
    g_trace = std::make_unique<dc::sim::TraceRecorder>(trace_slots);
  } else {
    g_trace = std::make_unique<dc::sim::TraceRecorder>(trace_slots, 256, 64);
  }
  if (profile) g_profiler = std::make_unique<dc::sim::CycleProfiler>();

  const auto run = [&]() -> int {
    if (shards > 0) {
      if (algo != "prefix") {
        std::cout << "--shards supports only --algo=prefix (got '" << algo
                  << "')\n";
        return 2;
      }
      if (!faults.empty()) {
        std::cout << "--shards and --faults cannot be combined\n";
        return 2;
      }
      if (!fault_timeline.empty() && fault_policy != "degrade") {
        std::cout << "--shards with --fault-timeline requires "
                     "--fault-policy=degrade (per-shard machines cannot "
                     "retry the host-side exchange)\n";
        return 2;
      }
      try {
        return run_sharded_prefix(n, op, shards, mem_budget, seed,
                                  fault_timeline);
      } catch (const dc::CheckError& e) {
        std::cout << "sharded run rejected: " << e.what() << "\n";
        return 2;
      }
    }
    if (mem_budget > 0) {
      std::cout << "--mem-budget requires --shards\n";
      return 2;
    }
    if (!faults.empty() && !fault_timeline.empty()) {
      std::cout << "--faults and --fault-timeline cannot be combined\n";
      return 2;
    }
    if (!fault_timeline.empty())
      return run_with_timeline(algo, n, fault_timeline, fault_policy, op,
                               dist, root, seed, retry_budget);
    if (!faults.empty())
      return run_with_faults(algo, n, faults, fault_policy, op, dist, root,
                             seed);
    if (algo == "prefix") return run_prefix(n, op, seed);
    if (algo == "sort") return run_sort(n, dist, seed);
    if (algo == "radix") return run_radix(n, bits, seed);
    if (algo == "enum") return run_enum(n, seed);
    if (algo == "broadcast") return run_broadcast(n, root);
    if (algo == "allreduce") return run_allreduce(n, seed);
    if (algo == "route") return run_route(n, pattern, seed);
    std::cout << "unknown --algo '" << algo
              << "' (prefix|sort|radix|enum|broadcast|allreduce|route)\n";
    return 2;
  };

  g_report.algo = algo;
  g_report.n = n;
  g_report.seed = seed;
  g_report.profiled = profile;
  const auto t0 = std::chrono::steady_clock::now();
  int rc = 2;
  // The flight recorder's reason to exist: a run that dies mid-collective
  // still writes its report, with the newest trace events of every worker
  // as the crash tail.
  try {
    rc = run();
  } catch (const dc::sim::FaultError& e) {
    g_report.status = "fault_error";
    g_report.error = e.what();
    std::cout << "fault error: " << e.what() << "\n";
    rc = 1;
  } catch (const dc::sim::SimError& e) {
    g_report.status = "sim_error";
    g_report.error = e.what();
    std::cout << "simulation error: " << e.what() << "\n";
    rc = 1;
  }
  g_report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (!trace_file.empty()) {
    std::ofstream out(trace_file);
    if (!out) {
      std::cout << "cannot open --trace file '" << trace_file << "'\n";
      return 2;
    }
    g_trace->write_json(out);
    std::cout << "trace: " << g_trace->emitted() << " events ("
              << g_trace->dropped() << " dropped) -> " << trace_file
              << " (open in https://ui.perfetto.dev)\n";
  }
  dc::sim::fill_from_recorder(g_report, *g_trace);
  if (!report_file.empty()) {
    std::ofstream out(report_file);
    if (!out) {
      std::cout << "cannot open --report file '" << report_file << "'\n";
      return 2;
    }
    dc::sim::write_report_json(out, g_report);
    std::cout << "run report: " << report_file << " (schema v"
              << dc::sim::kReportSchemaVersion << ", "
              << g_report.flight.size() << " flight-recorder events)\n";
  } else if (g_report.status != "ok") {
    std::cout << "flight recorder: " << g_report.flight.size()
              << " events retained; re-run with --report=FILE.json for the "
                 "full crash report\n";
  }
  if (!metrics.empty()) std::cout << dc::sim::metrics_report(metrics_fmt);
  return rc;
}
