// dcsim — a command-line driver over the whole library: pick a network
// size, an algorithm, a workload, and get verified results plus the model
// step counters. Intended as the "one binary to poke at everything".
//
//   ./dcsim --algo=prefix    --n=4 --op=plus
//   ./dcsim --algo=sort      --n=3 --dist=reverse
//   ./dcsim --algo=radix     --n=3 --bits=8
//   ./dcsim --algo=enum      --n=3
//   ./dcsim --algo=broadcast --n=4 --root=5
//   ./dcsim --algo=allreduce --n=4
//   ./dcsim --algo=route     --n=4 --pattern=random
#include <algorithm>
#include <iostream>
#include <numeric>

#include "collectives/broadcast.hpp"
#include "collectives/reduce.hpp"
#include "core/dual_prefix.hpp"
#include "core/dual_sort.hpp"
#include "core/enumeration_sort.hpp"
#include "core/formulas.hpp"
#include "core/radix_sort.hpp"
#include "core/sequential.hpp"
#include "sim/store_forward.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "topology/routing.hpp"

namespace {

using dc::u64;
using dc::net::NodeId;

void print_counters(const dc::sim::Counters& c) {
  dc::Table t("model step counters");
  t.header({"counter", "value"});
  t.add("communication cycles", c.comm_cycles);
  t.add("computation steps", c.comp_steps);
  t.add("messages delivered", c.messages);
  t.add("op applications", c.ops);
  std::cout << t;
}

int run_prefix(unsigned n, const std::string& op_name, u64 seed) {
  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  dc::Rng rng(seed);
  std::vector<u64> data(d.node_count());
  for (auto& x : data) x = rng.below(1000);

  std::vector<u64> out;
  std::vector<u64> expected;
  if (op_name == "plus") {
    const dc::core::Plus<u64> op;
    out = dc::core::dual_prefix(m, d, op, data);
    expected = dc::core::seq_inclusive_scan(op, data);
  } else if (op_name == "min") {
    const dc::core::Min<u64> op;
    out = dc::core::dual_prefix(m, d, op, data);
    expected = dc::core::seq_inclusive_scan(op, data);
  } else if (op_name == "max") {
    const dc::core::Max<u64> op;
    out = dc::core::dual_prefix(m, d, op, data);
    expected = dc::core::seq_inclusive_scan(op, data);
  } else if (op_name == "xor") {
    const dc::core::Xor<u64> op;
    out = dc::core::dual_prefix(m, d, op, data);
    expected = dc::core::seq_inclusive_scan(op, data);
  } else {
    std::cout << "unknown --op '" << op_name << "' (plus|min|max|xor)\n";
    return 2;
  }
  const bool ok = out == expected;
  std::cout << "D_prefix(" << op_name << ") on " << d.name() << ": "
            << (ok ? "correct" : "WRONG") << "; last prefix = " << out.back()
            << "\n";
  print_counters(m.counters());
  std::cout << "Theorem 1 bounds: comm <= "
            << dc::core::formulas::dual_prefix_comm_paper(n) << ", comp <= "
            << dc::core::formulas::dual_prefix_comp(n) << "\n";
  return ok ? 0 : 1;
}

int run_sort(unsigned n, const std::string& dist_name, u64 seed) {
  const dc::net::RecursiveDualCube r(n);
  dc::sim::Machine m(r);
  dc::KeyDistribution dist = dc::KeyDistribution::kUniform;
  for (const auto d : dc::all_key_distributions())
    if (dc::to_string(d) == dist_name) dist = d;
  auto keys = dc::generate_keys(dist, r.node_count(), seed);
  dc::core::dual_sort(m, r, keys);
  const bool ok = std::is_sorted(keys.begin(), keys.end());
  std::cout << "D_sort on " << r.name() << " (" << dc::to_string(dist)
            << "): " << (ok ? "sorted" : "NOT SORTED") << "\n";
  print_counters(m.counters());
  std::cout << "Theorem 2 exact: comm = "
            << dc::core::formulas::dual_sort_comm_exact(n) << ", comp = "
            << dc::core::formulas::dual_sort_comp_exact(n) << "\n";
  return ok ? 0 : 1;
}

int run_radix(unsigned n, unsigned bits, u64 seed) {
  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  dc::Rng rng(seed);
  std::vector<u64> keys(d.node_count());
  for (auto& k : keys) k = rng.below(dc::bits::pow2(bits));
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  const auto stats = dc::core::radix_sort(m, d, keys, bits);
  const bool ok = keys == expected;
  std::cout << "radix sort (" << bits << "-bit keys) on " << d.name() << ": "
            << (ok ? "sorted" : "NOT SORTED") << " in " << stats.passes
            << " passes (" << stats.routing_cycles << " routing cycles)\n";
  print_counters(m.counters());
  return ok ? 0 : 1;
}

int run_enum(unsigned n, u64 seed) {
  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  auto keys = dc::generate_keys(dc::KeyDistribution::kUniform,
                                d.node_count(), seed);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  const auto report = dc::core::enumeration_sort(m, d, keys);
  const bool ok = keys == expected;
  std::cout << "enumeration sort on " << d.name() << ": "
            << (ok ? "sorted" : "NOT SORTED") << "; placement drain "
            << report.cycles << " cycles\n";
  print_counters(m.counters());
  return ok ? 0 : 1;
}

int run_broadcast(unsigned n, NodeId root) {
  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  const auto out = dc::collectives::dual_broadcast<u64>(m, d, root, 42);
  const bool ok =
      std::all_of(out.begin(), out.end(), [](u64 v) { return v == 42; });
  std::cout << "broadcast from node " << root << " on " << d.name() << ": "
            << (ok ? "complete" : "INCOMPLETE") << "\n";
  print_counters(m.counters());
  std::cout << "diameter: " << d.diameter() << "\n";
  return ok ? 0 : 1;
}

int run_allreduce(unsigned n, u64 seed) {
  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  dc::Rng rng(seed);
  std::vector<u64> values(d.node_count());
  for (auto& v : values) v = rng.below(100);
  const u64 expected = std::accumulate(values.begin(), values.end(), u64{0});
  const dc::core::Plus<u64> op;
  const auto out = dc::collectives::dual_allreduce(m, d, op, values);
  const bool ok = std::all_of(out.begin(), out.end(),
                              [&](u64 v) { return v == expected; });
  std::cout << "allreduce(+) on " << d.name() << ": "
            << (ok ? "agrees everywhere" : "DISAGREES") << "; total "
            << expected << "\n";
  print_counters(m.counters());
  return ok ? 0 : 1;
}

int run_route(unsigned n, const std::string& pattern, u64 seed) {
  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  const std::size_t N = d.node_count();
  std::vector<NodeId> dest(N);
  if (pattern == "random") {
    std::iota(dest.begin(), dest.end(), 0);
    dc::Rng rng(seed);
    for (std::size_t i = N; i-- > 1;) std::swap(dest[i], dest[rng.below(i + 1)]);
  } else if (pattern == "complement") {
    for (NodeId u = 0; u < N; ++u) dest[u] = N - 1 - u;
  } else if (pattern == "cross") {
    for (NodeId u = 0; u < N; ++u) dest[u] = d.cross_neighbor(u);
  } else {
    std::cout << "unknown --pattern '" << pattern
              << "' (random|complement|cross)\n";
    return 2;
  }
  const auto report = dc::sim::route_packets(m, dest, [&](NodeId s, NodeId v) {
    return dc::net::route_dual_cube(d, s, v);
  });
  dc::Table t("routing report (" + pattern + ")");
  t.header({"metric", "value"});
  t.add("packets", report.packets);
  t.add("drain cycles", report.cycles);
  t.add("total hops", report.total_hops);
  t.add("avg latency", report.avg_latency);
  t.add("max queue", report.max_queue);
  std::cout << t;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dc::Cli cli(argc, argv);
  const std::string algo = cli.get_string("algo", "prefix");
  const unsigned n = static_cast<unsigned>(cli.get_int("n", 3));
  const u64 seed = static_cast<u64>(cli.get_int("seed", 1));
  const std::string op = cli.get_string("op", "plus");
  const std::string dist = cli.get_string("dist", "uniform");
  const unsigned bits = static_cast<unsigned>(cli.get_int("bits", 8));
  const NodeId root = static_cast<NodeId>(cli.get_int("root", 0));
  const std::string pattern = cli.get_string("pattern", "random");
  cli.finish();

  if (algo == "prefix") return run_prefix(n, op, seed);
  if (algo == "sort") return run_sort(n, dist, seed);
  if (algo == "radix") return run_radix(n, bits, seed);
  if (algo == "enum") return run_enum(n, seed);
  if (algo == "broadcast") return run_broadcast(n, root);
  if (algo == "allreduce") return run_allreduce(n, seed);
  if (algo == "route") return run_route(n, pattern, seed);
  std::cout << "unknown --algo '" << algo
            << "' (prefix|sort|radix|enum|broadcast|allreduce|route)\n";
  return 2;
}
