// Adding two huge integers on a dual-cube machine: one 64-bit limb per
// node, carries resolved by a single Algorithm-2 prefix over the
// Kill/Propagate/Generate monoid instead of an N-step ripple chain.
//
//   ./bignum_add [--n=4] [--trials=5]
#include <iostream>

#include "core/carry_lookahead.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using dc::u64;
  dc::Cli cli(argc, argv);
  const unsigned n = static_cast<unsigned>(cli.get_int("n", 4));
  const int trials = static_cast<int>(cli.get_int("trials", 5));
  cli.finish();

  const dc::net::DualCube d(n);
  const std::size_t limbs = d.node_count();
  std::cout << "adding " << limbs * 64 << "-bit integers (" << limbs
            << " limbs) on " << d.name() << "\n";

  dc::Rng rng(2026);
  bool all_ok = true;
  u64 comm = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<u64> a(limbs);
    std::vector<u64> b(limbs);
    // Mix of random and adversarial carry-chain limbs (all-ones blocks
    // propagate carries the farthest).
    for (std::size_t i = 0; i < limbs; ++i) {
      a[i] = rng.below(4) == 0 ? ~u64{0} : rng();
      b[i] = rng.below(4) == 0 ? ~u64{0} : rng();
    }
    dc::sim::Machine m(d);
    std::vector<u64> parallel_sum;
    const bool carry_par = dc::core::carry_lookahead_add(m, d, a, b, parallel_sum);
    std::vector<u64> ripple_sum;
    const bool carry_seq = dc::core::seq_ripple_add(a, b, ripple_sum);
    const bool ok = parallel_sum == ripple_sum && carry_par == carry_seq;
    all_ok = all_ok && ok;
    comm = m.counters().comm_cycles;
    std::cout << "  trial " << trial << ": "
              << (ok ? "matches ripple-carry" : "MISMATCH")
              << " (carry out = " << (carry_par ? 1 : 0) << ")\n";
  }

  dc::Table t("summary");
  t.header({"metric", "value"});
  t.add("limbs (sequential ripple chain length)", limbs);
  t.add("communication cycles per addition", comm);
  t.add("all trials correct", all_ok);
  std::cout << t;
  DC_CHECK(all_ok, "carry-lookahead disagreed with ripple carry");
  return 0;
}
