// Distributed sort of a dataset far larger than the machine: N nodes, m
// keys per node (the paper's future-work item 1), using the block
// generalization of Algorithm 3 (local sort + merge-split bitonic network).
//
//   ./distributed_sort [--n=3] [--block=1024] [--dist=uniform]
#include <chrono>
#include <iostream>

#include "core/block_sort.hpp"
#include "core/formulas.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  dc::Cli cli(argc, argv);
  const unsigned n = static_cast<unsigned>(cli.get_int("n", 3));
  const std::size_t block = static_cast<std::size_t>(cli.get_int("block", 1024));
  const std::string dist_name = cli.get_string("dist", "uniform");
  cli.finish();

  dc::KeyDistribution dist = dc::KeyDistribution::kUniform;
  for (const auto d : dc::all_key_distributions())
    if (dc::to_string(d) == dist_name) dist = d;

  const dc::net::RecursiveDualCube r(n);
  dc::sim::Machine m(r);
  const std::size_t total = r.node_count() * block;

  auto data = dc::generate_keys(dist, total, /*seed=*/1);
  std::cout << "sorting " << total << " keys (" << dc::to_string(dist)
            << ") on " << r.name() << " with " << block << " keys/node\n";

  const auto start = std::chrono::steady_clock::now();
  dc::core::block_sort(m, r, data, block);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  const bool ok = std::is_sorted(data.begin(), data.end());
  const auto c = m.counters();
  dc::Table t("result");
  t.header({"metric", "value"});
  t.add("sorted", ok);
  t.add("keys", total);
  t.add("comm cycles", c.comm_cycles);
  t.add("comm cycles (Theorem 2 exact, scalar)",
        dc::core::formulas::dual_sort_comm_exact(n));
  t.add("parallel comparison steps", c.comp_steps);
  t.add("total key operations", c.ops);
  t.add("simulator wall time (s)", elapsed);
  t.add("keys/s through the simulator",
        elapsed > 0 ? static_cast<double>(total) / elapsed : 0.0);
  std::cout << t;
  DC_CHECK(ok, "block sort produced an unsorted sequence");
  return 0;
}
