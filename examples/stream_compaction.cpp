// Stream compaction on a dual-cube machine — the classic data-parallel use
// of prefix computation (Hillis & Steele, the paper's reference [3]).
//
// Every node holds one sensor reading; we keep only the readings above a
// threshold and pack the survivors densely into the low end of the index
// space. The enumeration step is exactly Algorithm 2 with ⊕ = + over 0/1
// flags: the inclusive prefix of the flags gives each survivor its output
// slot. The scatter then routes every survivor to its slot along shortest
// dual-cube paths, which we schedule store-and-forward under the 1-port
// model to show the whole pipeline stays inside the paper's machine model.
//
//   ./stream_compaction [--n=3] [--threshold=600]
#include <iostream>
#include <map>

#include "core/dual_prefix.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "topology/routing.hpp"

namespace {

using dc::u64;
using dc::net::NodeId;

/// Store-and-forward scatter: item i travels from `from[i]` to `to[i]`
/// along the dual-cube route, one hop per cycle, retrying when a link or
/// port is busy. Returns the number of cycles used.
u64 scatter(dc::sim::Machine& m, const dc::net::DualCube& d,
            const std::vector<NodeId>& from, const std::vector<NodeId>& to,
            const std::vector<u64>& payload, std::vector<u64>& out) {
  struct Item {
    std::vector<NodeId> path;  // remaining path, front = current node
    u64 value = 0;
    std::size_t slot = 0;
  };
  std::vector<Item> items;
  for (std::size_t i = 0; i < from.size(); ++i) {
    items.push_back({dc::net::route_dual_cube(d, from[i], to[i]), payload[i], i});
  }
  out.assign(from.size(), 0);

  u64 cycles = 0;
  for (;;) {
    bool any_pending = false;
    // Greedy per-cycle schedule: first pending item at each node wins the
    // send port; receive ports claimed first-come.
    std::map<NodeId, std::size_t> sender_of;   // current node -> item
    std::map<NodeId, bool> receiver_busy;
    std::vector<std::size_t> moving;
    for (std::size_t i = 0; i < items.size(); ++i) {
      auto& it = items[i];
      if (it.path.size() <= 1) continue;  // arrived
      any_pending = true;
      const NodeId here = it.path[0];
      const NodeId next = it.path[1];
      if (sender_of.count(here) || receiver_busy[next]) continue;
      sender_of[here] = i;
      receiver_busy[next] = true;
      moving.push_back(i);
    }
    if (!any_pending) break;
    DC_CHECK(!moving.empty(), "scatter deadlocked");
    auto inbox = m.comm_cycle<u64>(
        [&](NodeId u) -> std::optional<dc::sim::Send<u64>> {
          const auto it = sender_of.find(u);
          if (it == sender_of.end()) return std::nullopt;
          return dc::sim::Send<u64>{items[it->second].path[1],
                                    items[it->second].value};
        });
    (void)inbox;  // payloads tracked in `items`; the machine enforced ports
    for (const std::size_t i : moving) items[i].path.erase(items[i].path.begin());
    ++cycles;
  }
  for (const auto& it : items) out[it.slot] = it.value;
  return cycles;
}

}  // namespace

int main(int argc, char** argv) {
  dc::Cli cli(argc, argv);
  const unsigned n = static_cast<unsigned>(cli.get_int("n", 3));
  const u64 threshold = static_cast<u64>(cli.get_int("threshold", 600));
  cli.finish();

  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  const std::size_t N = d.node_count();

  // Sensor readings, one per node (by global data index).
  dc::Rng rng(7);
  std::vector<u64> reading(N);
  for (auto& x : reading) x = rng.below(1000);

  // Flags + enumeration via Algorithm 2.
  const dc::core::Plus<u64> plus;
  std::vector<u64> flag(N);
  for (std::size_t i = 0; i < N; ++i) flag[i] = reading[i] > threshold ? 1 : 0;
  const auto slot_after = dc::core::dual_prefix(m, d, plus, flag);
  const u64 kept = slot_after.back();
  const auto prefix_counters = m.counters();

  // Scatter survivors to their packed slots.
  std::vector<NodeId> from;
  std::vector<NodeId> to;
  std::vector<u64> payload;
  for (std::size_t i = 0; i < N; ++i) {
    if (!flag[i]) continue;
    from.push_back(dc::core::dual_prefix_node_of_index(d, i));
    to.push_back(dc::core::dual_prefix_node_of_index(d, slot_after[i] - 1));
    payload.push_back(reading[i]);
  }
  std::vector<u64> packed;
  const u64 scatter_cycles = scatter(m, d, from, to, payload, packed);

  std::cout << "stream compaction on " << d.name() << " (" << N
            << " readings, threshold " << threshold << ")\n";
  std::cout << "  kept " << kept << " readings\n";
  std::cout << "  enumeration (Algorithm 2): " << prefix_counters.comm_cycles
            << " comm cycles\n";
  std::cout << "  scatter: " << scatter_cycles << " comm cycles\n";

  dc::Table t("first packed survivors");
  t.header({"slot", "reading"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, packed.size()); ++i)
    t.add(i, packed[i]);
  std::cout << t;

  // Self-check.
  std::size_t expect_slot = 0;
  for (std::size_t i = 0; i < N; ++i) {
    if (!flag[i]) continue;
    DC_CHECK(packed[expect_slot] == reading[i], "compaction mismatch");
    ++expect_slot;
  }
  DC_CHECK(expect_slot == kept, "compaction lost items");
  std::cout << "self-check passed: output is dense and order-preserving\n";
  return 0;
}
