// Shared helpers for the reproduction benches: a tiny pass/fail tracker so
// every bench binary doubles as an acceptance test (exits non-zero when a
// paper bound is violated).
#pragma once

#include <iostream>
#include <string>

namespace dc::bench {

class Acceptance {
 public:
  /// Records a named check; prints FAIL lines immediately.
  void expect(bool ok, const std::string& what) {
    if (!ok) {
      ++failures_;
      std::cout << "FAIL: " << what << "\n";
    }
  }

  /// Prints the verdict and returns the process exit code.
  int finish(const std::string& bench_name) const {
    if (failures_ == 0) {
      std::cout << "[" << bench_name << "] all paper-bound checks passed\n";
      return 0;
    }
    std::cout << "[" << bench_name << "] " << failures_
              << " paper-bound check(s) FAILED\n";
    return 1;
  }

 private:
  int failures_ = 0;
};

}  // namespace dc::bench
