// Theorem 2: sorting on D_n takes at most 6n^2 communication steps and 2n^2
// comparison steps.
//
// Sweeps n and reports measured counts against the exact recurrence
// solutions (6n^2-7n+2, 2n^2-n) and the paper's bounds, next to the
// size-matched hypercube bitonic sort (d(d+1)/2 with d = 2n-1) — the ~3x
// emulation overhead discussed in the paper's conclusion.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/cube_bitonic_sort.hpp"
#include "core/dual_sort.hpp"
#include "core/formulas.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using dc::u64;
  namespace f = dc::core::formulas;
  dc::bench::Acceptance acc;

  dc::Table t("Theorem 2 — D_sort on D_n (measured vs paper)");
  t.header({"n", "nodes", "comm meas", "comm exact", "comm<=6n^2",
            "comp meas", "comp exact", "comp<=2n^2", "Q_(2n-1) steps",
            "overhead x", "ok"});

  for (unsigned n = 1; n <= 6; ++n) {
    const dc::net::RecursiveDualCube r(n);
    dc::sim::Machine m(r);
    auto keys =
        dc::generate_keys(dc::KeyDistribution::kUniform, r.node_count(), n);
    dc::core::dual_sort(m, r, keys);
    const bool sorted = std::is_sorted(keys.begin(), keys.end());
    const auto c = m.counters();

    const u64 cube_steps = f::cube_bitonic_steps(2 * n - 1);
    const bool ok = sorted && c.comm_cycles == f::dual_sort_comm_exact(n) &&
                    c.comm_cycles <= f::dual_sort_comm_bound(n) &&
                    c.comp_steps == f::dual_sort_comp_exact(n) &&
                    c.comp_steps <= f::dual_sort_comp_bound(n);
    acc.expect(ok, "n=" + std::to_string(n));
    t.add(n, r.node_count(), c.comm_cycles, f::dual_sort_comm_exact(n),
          f::dual_sort_comm_bound(n), c.comp_steps, f::dual_sort_comp_exact(n),
          f::dual_sort_comp_bound(n), cube_steps,
          static_cast<double>(c.comm_cycles) / static_cast<double>(cube_steps),
          ok);
  }
  std::cout << t << "\n";
  std::cout << "overhead x = dual-cube comm / hypercube comm; approaches 3\n"
               "as n grows (the paper's worst-case emulation factor).\n";
  return acc.finish("tab_theorem2_sort");
}
