// Figures 5 and 6: the worked sorting example — D_sort(D_2, ascending) on
// eight keys.
//
// Figure 5 shows the bitonic sequence being generated (the four D_1 sorts
// plus the half-merge pass); Figure 6 shows the bitonic sequence being
// merged into sorted order (the full-merge pass). We print the key vector
// after every dimension step, labeled by phase, then check sortedness, the
// mid-run bitonic invariant, and the exact Theorem 2 step counts.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/dual_sort.hpp"
#include "core/formulas.hpp"

namespace {

void print_keys(const std::string& label, const std::vector<dc::u64>& keys) {
  std::cout << "  " << label << ": [";
  for (std::size_t i = 0; i < keys.size(); ++i)
    std::cout << keys[i] << (i + 1 < keys.size() ? " " : "");
  std::cout << "]\n";
}

bool is_bitonic_asc_desc(const std::vector<dc::u64>& v) {
  const std::size_t half = v.size() / 2;
  return std::is_sorted(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(half)) &&
         std::is_sorted(v.begin() + static_cast<std::ptrdiff_t>(half), v.end(),
                        std::greater<>());
}

}  // namespace

int main() {
  using dc::u64;
  dc::bench::Acceptance acc;

  const unsigned n = 2;
  const dc::net::RecursiveDualCube r(n);
  dc::sim::Machine m(r);

  // An 8-key input in the spirit of the figures (the OCR of the paper does
  // not preserve the exact keys; any fixed permutation exercises the same
  // schedule, which is data-oblivious).
  std::vector<u64> keys = {6, 3, 0, 7, 4, 1, 5, 2};
  std::cout << "D_sort(D_2, ascending) — Figures 5 and 6\n";
  print_keys("input", keys);
  std::cout << "\nFigure 5 — generate the bitonic sequence:\n";

  bool printed_fig6_header = false;
  std::vector<u64> after_bitonic;
  dc::core::dual_sort<u64>(
      m, r, keys, false,
      [&](const std::string& phase, const std::vector<u64>& now) {
        // The Figure 6 part of the schedule is the top level's full merge.
        if (!printed_fig6_header &&
            phase.find("level 2 full-merge") != std::string::npos) {
          std::cout << "\nFigure 6 — merge the bitonic sequence:\n";
          printed_fig6_header = true;
        }
        print_keys(phase, now);
        if (phase == "level 2 half-merge dim 0") after_bitonic = now;
      });

  print_keys("\nresult", keys);

  acc.expect(std::is_sorted(keys.begin(), keys.end()), "output sorted");
  acc.expect(!after_bitonic.empty() && is_bitonic_asc_desc(after_bitonic),
             "sequence bitonic (asc half + desc half) between the passes");
  const auto c = m.counters();
  std::cout << "\ncommunication steps: " << c.comm_cycles << " (exact "
            << dc::core::formulas::dual_sort_comm_exact(n) << ", bound "
            << dc::core::formulas::dual_sort_comm_bound(n) << ")\n";
  std::cout << "comparison steps:    " << c.comp_steps << " (exact "
            << dc::core::formulas::dual_sort_comp_exact(n) << ", bound "
            << dc::core::formulas::dual_sort_comp_bound(n) << ")\n";
  acc.expect(c.comm_cycles == dc::core::formulas::dual_sort_comm_exact(n),
             "T_comm exact");
  acc.expect(c.comp_steps == dc::core::formulas::dual_sort_comp_exact(n),
             "T_comp exact");
  return acc.finish("fig5_6_sort_example");
}
