// Robustness table: graceful degradation of the fault-tolerant prefix and
// broadcast as the number of random node faults grows from 0 to n-1 (the
// n-connectivity guarantee) on D_2..D_4. For each (n, k) cell the sweep
// averages over several seeded fault draws and reports the total
// communication cycles, repair cycles, and rerouted hops paid to the
// faults — healthy runs must cost exactly the 2n-cycle optimum.
#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#include "bench/bench_util.hpp"
#include "collectives/ft_broadcast.hpp"
#include "core/dual_prefix.hpp"
#include "core/ft_dual_prefix.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"
#include "sim/metrics.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using dc::u64;
using dc::net::NodeId;

struct Cell {
  u64 comm_cycles = 0;
  u64 repair_cycles = 0;
  u64 rerouted_hops = 0;
  u64 trials = 0;
};

}  // namespace

int main() {
  // Armed before any machine exists, so every sweep machine feeds the
  // process registry (fault drops, per-cycle message distribution).
  dc::sim::MetricsRegistry::arm();
  dc::bench::Acceptance acc;
  constexpr std::uint64_t kEver = ~std::uint64_t{0};
  constexpr u64 kTrials = 5;
  const dc::core::Plus<u64> plus;

  dc::Table t("Fault sweep: degradation vs. node-fault count (avg over seeds)");
  t.header({"n", "k faults", "algo", "comm cycles", "repair cycles",
            "rerouted hops", "healthy 2n"});

  for (unsigned n = 2; n <= 4; ++n) {
    const dc::net::DualCube d(n);
    std::vector<u64> data(d.node_count());
    dc::Rng rng(77 + n);
    for (auto& x : data) x = rng.below(1000);

    for (std::size_t k = 0; k < n; ++k) {
      Cell pc, bc;
      for (u64 trial = 0; trial < kTrials; ++trial) {
        const u64 seed = 1000 * n + 10 * static_cast<u64>(k) + trial;
        const auto plan = dc::sim::FaultPlan::random_nodes(d, k, seed);

        // Prefix: every live node must hold the masked scan of live inputs.
        {
          dc::sim::Machine m(d);
          m.attach_faults(std::make_shared<dc::sim::FaultPlan>(plan),
                          dc::sim::FaultPolicy::kStrict);
          dc::sim::FtReport rep;
          const auto out = dc::core::ft_dual_prefix(m, d, plus, data, plan,
                                                    /*inclusive=*/true, &rep);
          std::vector<bool> dead_index(d.node_count(), false);
          for (const auto u : plan.dead_nodes())
            dead_index[dc::core::dual_prefix_index_of_node(d, u)] = true;
          u64 accum = 0;
          bool ok = true;
          for (std::size_t i = 0; i < data.size(); ++i) {
            if (!dead_index[i]) accum += data[i];
            if (dead_index[i]) {
              ok = ok && !out[i].has_value();
            } else {
              ok = ok && out[i].has_value() && *out[i] == accum;
            }
          }
          acc.expect(ok, "prefix correct n=" + std::to_string(n) +
                             " k=" + std::to_string(k) +
                             " seed=" + std::to_string(seed));
          if (k == 0) {
            acc.expect(m.counters().comm_cycles == 2 * n,
                       "healthy prefix costs 2n, n=" + std::to_string(n));
            acc.expect(rep.repair_cycles == 0 && rep.rerouted_hops == 0,
                       "healthy prefix pays no repair, n=" + std::to_string(n));
          }
          pc.comm_cycles += m.counters().comm_cycles;
          pc.repair_cycles += rep.repair_cycles;
          pc.rerouted_hops += rep.rerouted_hops;
          ++pc.trials;
        }

        // Broadcast: root must survive the draw; redraw excluding it.
        {
          const auto bplan =
              dc::sim::FaultPlan::random_nodes(d, k, seed, {NodeId{0}});
          dc::sim::Machine m(d);
          m.attach_faults(std::make_shared<dc::sim::FaultPlan>(bplan),
                          dc::sim::FaultPolicy::kStrict);
          dc::sim::FtReport rep;
          const auto out =
              dc::collectives::ft_dual_broadcast<u64>(m, d, 0, 42, bplan, &rep);
          bool ok = true;
          for (NodeId u = 0; u < d.node_count(); ++u) {
            if (bplan.node_dead(u, kEver)) {
              ok = ok && !out[u].has_value();
            } else {
              ok = ok && out[u].has_value() && *out[u] == 42;
            }
          }
          acc.expect(ok, "broadcast reaches live nodes n=" + std::to_string(n) +
                             " k=" + std::to_string(k) +
                             " seed=" + std::to_string(seed));
          if (k == 0) {
            acc.expect(m.counters().comm_cycles == 2 * n,
                       "healthy broadcast costs 2n, n=" + std::to_string(n));
          }
          bc.comm_cycles += m.counters().comm_cycles;
          bc.repair_cycles += rep.repair_cycles;
          bc.rerouted_hops += rep.rerouted_hops;
          ++bc.trials;
        }
      }
      t.add(n, k, "prefix", pc.comm_cycles / pc.trials,
            pc.repair_cycles / pc.trials, pc.rerouted_hops / pc.trials, 2 * n);
      t.add(n, k, "broadcast", bc.comm_cycles / bc.trials,
            bc.repair_cycles / bc.trials, bc.rerouted_hops / bc.trials, 2 * n);
    }
  }
  std::cout << t << "\n";
  std::cout << "k=0 rows sit exactly on the 2n-cycle optimum; each added\n"
               "fault buys a bounded batch of detour cycles, never a wrong\n"
               "or missing answer on a live node.\n\n";
  std::cout << dc::sim::metrics_report();
  return acc.finish("tab_fault_sweep");
}
