// Robustness table: graceful degradation of the fault-tolerant prefix and
// broadcast as the number of random node faults grows from 0 to n-1 (the
// n-connectivity guarantee) on D_2..D_4. For each (n, k) cell the sweep
// averages over several seeded fault draws and reports the total
// communication cycles, repair cycles, and rerouted hops paid to the
// faults — healthy runs must cost exactly the 2n-cycle optimum.
//
// A second axis sweeps *when* a link fault lands: "pre" installs a dead
// cross edge before the run (the planner routes around it — detour
// repairs, zero retries), "mid" flaps the same edge mid-collective (the
// strict filter aborts the phase; the self-healing driver pays backoff,
// re-plans on the new epoch and retries — zero detours planned up front).
// With DC_FAULT_SWEEP_JSON=FILE the timeline rows are also written as a
// JSON array for tools/check_bench_json.py's fault-sweep gate.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "collectives/ft_broadcast.hpp"
#include "core/dual_prefix.hpp"
#include "core/ft_dual_prefix.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"
#include "sim/metrics.hpp"
#include "sim/recovery.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using dc::u64;
using dc::net::NodeId;

struct Cell {
  u64 comm_cycles = 0;
  u64 repair_cycles = 0;
  u64 rerouted_hops = 0;
  u64 trials = 0;
};

/// One row of the injection-timing sweep (also the JSON record).
struct TimelineRow {
  unsigned n = 0;
  std::string inject;  ///< "pre" | "mid"
  u64 comm_cycles = 0;
  std::size_t retries = 0;
  std::size_t replans = 0;
  u64 backoff_cycles = 0;
  std::size_t repaired = 0;
  bool correct = false;
};

/// Self-healing D_prefix under a cross-edge link fault injected either
/// before the run or mid-collective (the cross exchange fires at cycle
/// n-1, so a [n-1, n+2) flap is guaranteed to abort the in-flight phase).
TimelineRow run_timeline_trial(unsigned n, bool mid,
                               const std::vector<u64>& data) {
  const dc::net::DualCube d(n);
  const NodeId cross = d.cross_neighbor(0);
  dc::sim::FaultTimeline tl(/*seed=*/1);
  if (mid) {
    tl.link_down(0, cross, n - 1);
    tl.link_up(0, cross, n + 2);
  } else {
    tl.link_down(0, cross, 0);  // dead from the start, never heals
  }
  dc::sim::Machine m(d);
  dc::sim::RecoveryDriver drv(
      m, std::make_shared<const dc::sim::FaultTimeline>(std::move(tl)));
  const dc::core::Plus<u64> plus;
  const auto out = dc::sim::resilient_dual_prefix(drv, d, plus, data);
  bool ok = out.size() == data.size();
  u64 accum = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    accum += data[i];  // no node ever dies: every slot must be live
    ok = ok && out[i].has_value() && *out[i] == accum;
  }
  ok = ok && m.replayed_cycles() == 0;  // never a stale compiled schedule
  const auto& rep = drv.report();
  TimelineRow row;
  row.n = n;
  row.inject = mid ? "mid" : "pre";
  row.comm_cycles = m.counters().comm_cycles;
  row.retries = rep.retries;
  row.replans = rep.replans;
  row.backoff_cycles = rep.backoff_cycles;
  row.repaired = rep.transport.repaired;
  row.correct = ok;
  return row;
}

void write_sweep_json(const std::vector<TimelineRow>& rows,
                      const char* path) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "  {\"n\": " << r.n << ", \"inject\": \"" << r.inject
        << "\", \"comm_cycles\": " << r.comm_cycles
        << ", \"retries\": " << r.retries << ", \"replans\": " << r.replans
        << ", \"backoff_cycles\": " << r.backoff_cycles
        << ", \"repaired\": " << r.repaired
        << ", \"correct\": " << (r.correct ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "fault-sweep JSON: " << rows.size() << " rows -> " << path
            << "\n";
}

}  // namespace

int main() {
  // Armed before any machine exists, so every sweep machine feeds the
  // process registry (fault drops, per-cycle message distribution).
  dc::sim::MetricsRegistry::arm();
  dc::bench::Acceptance acc;
  constexpr std::uint64_t kEver = ~std::uint64_t{0};
  constexpr u64 kTrials = 5;
  const dc::core::Plus<u64> plus;

  dc::Table t("Fault sweep: degradation vs. node-fault count (avg over seeds)");
  t.header({"n", "k faults", "algo", "comm cycles", "repair cycles",
            "rerouted hops", "healthy 2n"});

  for (unsigned n = 2; n <= 4; ++n) {
    const dc::net::DualCube d(n);
    std::vector<u64> data(d.node_count());
    dc::Rng rng(77 + n);
    for (auto& x : data) x = rng.below(1000);

    for (std::size_t k = 0; k < n; ++k) {
      Cell pc, bc;
      for (u64 trial = 0; trial < kTrials; ++trial) {
        const u64 seed = 1000 * n + 10 * static_cast<u64>(k) + trial;
        const auto plan = dc::sim::FaultPlan::random_nodes(d, k, seed);

        // Prefix: every live node must hold the masked scan of live inputs.
        {
          dc::sim::Machine m(d);
          m.attach_faults(std::make_shared<dc::sim::FaultPlan>(plan),
                          dc::sim::FaultPolicy::kStrict);
          dc::sim::FtReport rep;
          const auto out = dc::core::ft_dual_prefix(m, d, plus, data, plan,
                                                    /*inclusive=*/true, &rep);
          std::vector<bool> dead_index(d.node_count(), false);
          for (const auto u : plan.dead_nodes())
            dead_index[dc::core::dual_prefix_index_of_node(d, u)] = true;
          u64 accum = 0;
          bool ok = true;
          for (std::size_t i = 0; i < data.size(); ++i) {
            if (!dead_index[i]) accum += data[i];
            if (dead_index[i]) {
              ok = ok && !out[i].has_value();
            } else {
              ok = ok && out[i].has_value() && *out[i] == accum;
            }
          }
          acc.expect(ok, "prefix correct n=" + std::to_string(n) +
                             " k=" + std::to_string(k) +
                             " seed=" + std::to_string(seed));
          if (k == 0) {
            acc.expect(m.counters().comm_cycles == 2 * n,
                       "healthy prefix costs 2n, n=" + std::to_string(n));
            acc.expect(rep.repair_cycles == 0 && rep.rerouted_hops == 0,
                       "healthy prefix pays no repair, n=" + std::to_string(n));
          }
          pc.comm_cycles += m.counters().comm_cycles;
          pc.repair_cycles += rep.repair_cycles;
          pc.rerouted_hops += rep.rerouted_hops;
          ++pc.trials;
        }

        // Broadcast: root must survive the draw; redraw excluding it.
        {
          const auto bplan =
              dc::sim::FaultPlan::random_nodes(d, k, seed, {NodeId{0}});
          dc::sim::Machine m(d);
          m.attach_faults(std::make_shared<dc::sim::FaultPlan>(bplan),
                          dc::sim::FaultPolicy::kStrict);
          dc::sim::FtReport rep;
          const auto out =
              dc::collectives::ft_dual_broadcast<u64>(m, d, 0, 42, bplan, &rep);
          bool ok = true;
          for (NodeId u = 0; u < d.node_count(); ++u) {
            if (bplan.node_dead(u, kEver)) {
              ok = ok && !out[u].has_value();
            } else {
              ok = ok && out[u].has_value() && *out[u] == 42;
            }
          }
          acc.expect(ok, "broadcast reaches live nodes n=" + std::to_string(n) +
                             " k=" + std::to_string(k) +
                             " seed=" + std::to_string(seed));
          if (k == 0) {
            acc.expect(m.counters().comm_cycles == 2 * n,
                       "healthy broadcast costs 2n, n=" + std::to_string(n));
          }
          bc.comm_cycles += m.counters().comm_cycles;
          bc.repair_cycles += rep.repair_cycles;
          bc.rerouted_hops += rep.rerouted_hops;
          ++bc.trials;
        }
      }
      t.add(n, k, "prefix", pc.comm_cycles / pc.trials,
            pc.repair_cycles / pc.trials, pc.rerouted_hops / pc.trials, 2 * n);
      t.add(n, k, "broadcast", bc.comm_cycles / bc.trials,
            bc.repair_cycles / bc.trials, bc.rerouted_hops / bc.trials, 2 * n);
    }
  }
  std::cout << t << "\n";
  std::cout << "k=0 rows sit exactly on the 2n-cycle optimum; each added\n"
               "fault buys a bounded batch of detour cycles, never a wrong\n"
               "or missing answer on a live node.\n\n";

  // ---- injection-timing axis: the same cross-edge fault, pre vs mid ----
  dc::Table tt("Link-fault injection timing: planned detour vs retry-with-replan");
  tt.header({"n", "inject", "comm cycles", "retries", "replans",
             "backoff cycles", "repaired", "healthy 2n"});
  std::vector<TimelineRow> timeline_rows;
  for (unsigned n = 2; n <= 4; ++n) {
    const dc::net::DualCube d(n);
    std::vector<u64> data(d.node_count());
    dc::Rng rng(77 + n);
    for (auto& x : data) x = rng.below(1000);
    for (const bool mid : {false, true}) {
      const TimelineRow row = run_timeline_trial(n, mid, data);
      acc.expect(row.correct, "timeline " + row.inject + " prefix correct n=" +
                                  std::to_string(n));
      if (mid) {
        acc.expect(row.retries >= 1,
                   "mid-run flap must trigger a retry, n=" + std::to_string(n));
        acc.expect(row.replans == row.retries,
                   "every retry re-plans, n=" + std::to_string(n));
      } else {
        acc.expect(row.retries == 0,
                   "pre-run fault needs no retry, n=" + std::to_string(n));
        acc.expect(row.repaired > 0,
                   "pre-run fault is detoured, n=" + std::to_string(n));
      }
      tt.add(row.n, row.inject, row.comm_cycles, row.retries, row.replans,
             row.backoff_cycles, row.repaired, 2 * n);
      timeline_rows.push_back(row);
    }
  }
  std::cout << tt << "\n";
  std::cout << "pre-installed faults are routed around at plan time (detour\n"
               "repairs, zero retries); mid-run flaps abort the phase and are\n"
               "healed by backoff + re-plan (retries, zero planned detours).\n\n";
  if (const char* path = std::getenv("DC_FAULT_SWEEP_JSON"))
    write_sweep_json(timeline_rows, path);

  std::cout << dc::sim::metrics_report();
  return acc.finish("tab_fault_sweep");
}
