// Ablation (claim S2, the paper's conclusion): why the cluster technique?
//
// The generic alternative is to emulate the hypercube algorithm directly on
// the dual-cube, paying 3 communication cycles for every dimension without
// a direct link. For prefix computation that costs 6n-5 cycles versus the
// cluster technique's 2n — the ~3x overhead the paper warns about and the
// reason Algorithm 2 exists. Both variants are run and verified on the same
// inputs; for sorting, the recursive technique (Algorithm 3) *is* the tuned
// emulation, so its cost is compared against the ideal (link-rich)
// hypercube as the lower bound.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/dual_prefix.hpp"
#include "core/emulated_prefix.hpp"
#include "core/formulas.hpp"
#include "core/sequential.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using dc::u64;
  namespace f = dc::core::formulas;
  dc::bench::Acceptance acc;
  const dc::core::Plus<u64> plus;

  dc::Table t("Prefix on D_n: cluster technique (Alg 2) vs naive emulation");
  t.header({"n", "nodes", "cluster comm", "emulated comm", "saving x",
            "both correct"});

  for (unsigned n = 1; n <= 8; ++n) {
    const dc::net::DualCube d(n);
    const dc::net::RecursiveDualCube r(n);
    dc::Rng rng(n);
    std::vector<u64> data(d.node_count());
    for (auto& x : data) x = rng.below(1000);

    dc::sim::Machine md(d);
    const auto cluster_out = dc::core::dual_prefix(md, d, plus, data);
    const bool cluster_ok =
        cluster_out == dc::core::seq_inclusive_scan(plus, data);

    dc::sim::Machine mr(r);
    const auto emu_out = dc::core::emulated_prefix(mr, r, plus, data);
    const bool emu_ok = emu_out == dc::core::seq_inclusive_scan(plus, data);

    const auto cc = md.counters().comm_cycles;
    const auto ec = mr.counters().comm_cycles;
    acc.expect(cluster_ok && emu_ok, "correctness n=" + std::to_string(n));
    acc.expect(cc == f::dual_prefix_comm_impl(n),
               "cluster comm formula n=" + std::to_string(n));
    acc.expect(ec == f::emulated_prefix_comm(n),
               "emulated comm formula n=" + std::to_string(n));
    if (n >= 2) {
      acc.expect(cc < ec, "cluster technique wins n=" + std::to_string(n));
    }
    t.add(n, d.node_count(), cc, ec,
          static_cast<double>(ec) / static_cast<double>(cc),
          cluster_ok && emu_ok);
  }
  std::cout << t << "\n";
  std::cout << "the cluster technique needs no relayed exchanges at all: its\n"
               "saving approaches 3x as n grows, matching the paper's\n"
               "worst-case emulation factor.\n";
  return acc.finish("ablation_emulation");
}
