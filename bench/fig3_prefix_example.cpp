// Figure 3: the worked prefix-sum example.
//
//   Prefix_sum([1,2,...,32]) = [1,3,6,...,528] on D_3
//
// The paper shows six panels, (a) the original data distribution through
// (f) the final result, one per stage of Algorithm 2. We run Algorithm 2
// with the snapshot observer and print each panel as a per-cluster table,
// then verify the final prefixes are the triangular numbers.
#include <iostream>
#include <numeric>

#include "bench/bench_util.hpp"
#include "core/dual_prefix.hpp"
#include "core/formulas.hpp"
#include "support/table.hpp"

int main() {
  using dc::u64;
  dc::bench::Acceptance acc;

  const dc::net::DualCube d(3);
  dc::sim::Machine m(d);
  const dc::core::Plus<u64> plus;

  std::vector<u64> data(d.node_count());
  std::iota(data.begin(), data.end(), 1);

  std::cout << "Figure 3: prefix sums of [1..32] on " << d.name() << "\n\n";

  const auto out = dc::core::dual_prefix<dc::core::Plus<u64>>(
      m, d, plus, data,
      [&](const std::string& stage,
          const std::vector<std::pair<std::string, std::vector<u64>>>& arrays) {
        std::cout << "--- " << stage << " ---\n";
        dc::Table t;
        std::vector<std::string> head{"cluster"};
        for (dc::u64 id = 0; id < d.cluster_size(); ++id)
          head.push_back("node " + std::to_string(id));
        t.header(head);
        for (unsigned cls = 0; cls <= 1; ++cls) {
          for (u64 c = 0; c < d.clusters_per_class(); ++c) {
            for (const auto& [name, values] : arrays) {
              std::vector<std::string> row{"class" + std::to_string(cls) +
                                           "/" + std::to_string(c) + " " +
                                           name};
              for (const auto u : d.cluster_members(cls, c))
                row.push_back(std::to_string(values[u]));
              t.row(row);
            }
          }
        }
        std::cout << t << "\n";
      });

  // The paper's printed answer: prefix sums of 1..32 are the triangular
  // numbers, ending at 528.
  std::cout << "final prefixes: ";
  for (std::size_t i = 0; i < out.size(); ++i)
    std::cout << out[i] << (i + 1 < out.size() ? "," : "\n");
  for (std::size_t i = 0; i < out.size(); ++i)
    acc.expect(out[i] == (i + 1) * (i + 2) / 2,
               "prefix[" + std::to_string(i) + "] is triangular");
  acc.expect(out.back() == 528, "last prefix = 528 (paper's figure)");

  const auto c = m.counters();
  std::cout << "communication steps: " << c.comm_cycles
            << "  (paper counts " << dc::core::formulas::dual_prefix_comm_paper(3)
            << "; see DESIGN.md on step 5)\n";
  std::cout << "computation steps:   " << c.comp_steps << "\n";
  acc.expect(c.comm_cycles <= dc::core::formulas::dual_prefix_comm_paper(3),
             "T_comm within Theorem 1 bound");
  acc.expect(c.comp_steps <= dc::core::formulas::dual_prefix_comp(3),
             "T_comp within Theorem 1 bound");
  return acc.finish("fig3_prefix_example");
}
