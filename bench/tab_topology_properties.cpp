// Claim S1 (introduction / Section 2): the dual-cube keeps hypercube-like
// properties at half the degree — same size as Q_(2n-1), degree n instead
// of 2n-1, diameter 2n instead of 2n-1 — and compares favorably with the
// bounded-degree hypercube derivatives the introduction lists (CCC,
// de Bruijn, shuffle-exchange).
//
// All values below are *measured* on the constructed graphs (BFS), not
// quoted: the formulas are checked against the measurements.
#include <iostream>
#include <memory>

#include "bench/bench_util.hpp"
#include "support/table.hpp"
#include "topology/butterfly.hpp"
#include "topology/cube_connected_cycles.hpp"
#include "topology/de_bruijn.hpp"
#include "topology/dual_cube.hpp"
#include "topology/graph.hpp"
#include "topology/hypercube.hpp"
#include "topology/metacube.hpp"
#include "topology/shuffle_exchange.hpp"

namespace {

struct Row {
  const dc::net::Topology& t;
  std::string note;
};

void add_row(dc::Table& table, const dc::net::Topology& t,
             const std::string& note) {
  const auto stats = dc::net::distance_stats(t);
  std::size_t deg_min = ~std::size_t{0};
  std::size_t deg_max = 0;
  for (dc::net::NodeId u = 0; u < t.node_count(); ++u) {
    deg_min = std::min(deg_min, t.degree(u));
    deg_max = std::max(deg_max, t.degree(u));
  }
  const std::string degree =
      deg_min == deg_max ? std::to_string(deg_min)
                         : std::to_string(deg_min) + "-" + std::to_string(deg_max);
  table.row({t.name(), std::to_string(t.node_count()),
             std::to_string(t.edge_count()), degree,
             std::to_string(stats.diameter),
             dc::Table::cell_to_string(stats.average), note});
}

}  // namespace

int main() {
  dc::bench::Acceptance acc;

  dc::Table t("Topology comparison (all values measured by BFS)");
  t.header({"network", "nodes", "links", "degree", "diameter", "avg dist",
            "note"});

  for (unsigned n : {2u, 3u, 4u}) {
    const dc::net::DualCube d(n);
    const dc::net::Hypercube q(2 * n - 1);
    add_row(t, d, "paper's network");
    add_row(t, q, "same size baseline");

    const auto ds = dc::net::distance_stats(d);
    const auto qs = dc::net::distance_stats(q);
    acc.expect(d.node_count() == q.node_count(), "size match n=" + std::to_string(n));
    acc.expect(ds.diameter == qs.diameter + 1,
               "diameter is hypercube+1 for n=" + std::to_string(n));
    acc.expect(d.order() <= (q.dimensions() + 2) / 2,
               "degree about half of hypercube for n=" + std::to_string(n));
    acc.expect(d.edge_count() < q.edge_count(),
               "fewer links than hypercube for n=" + std::to_string(n));
  }

  // Bounded-degree derivatives from the introduction, at comparable sizes.
  const dc::net::CubeConnectedCycles ccc3(3);
  const dc::net::CubeConnectedCycles ccc4(4);
  const dc::net::DeBruijn db5(5);
  const dc::net::ShuffleExchange se5(5);
  const dc::net::WrappedButterfly bf3(3);
  const dc::net::WrappedButterfly bf4(4);
  add_row(t, ccc3, "bounded degree 3");
  add_row(t, ccc4, "bounded degree 3");
  add_row(t, db5, "degree <= 4");
  add_row(t, se5, "degree <= 3");
  add_row(t, bf3, "bounded degree 4");
  add_row(t, bf4, "bounded degree 4");

  // The authors' generalization: MC(1,m) IS D_(m+1); larger k trades even
  // more degree for diameter.
  const dc::net::Metacube mc22(2, 2);
  add_row(t, mc22, "metacube, degree m+k");

  std::cout << t << "\n";

  // Natural balanced cuts (upper bounds on bisection width): splitting the
  // dual-cube by class severs exactly the N/2 cross-edges — the same N/2
  // as the hypercube's dimension cut, i.e. the dual-cube gives up *no*
  // bisection bandwidth for its halved degree under this cut.
  dc::Table cuts("Natural balanced cuts (bisection upper bounds)");
  cuts.header({"network", "cut", "edges cut", "total links"});
  for (unsigned n : {2u, 3u, 4u}) {
    const dc::net::DualCube d(n);
    const dc::net::Hypercube q(2 * n - 1);
    const dc::u64 class_cut = dc::net::cut_size(
        d, [&](dc::net::NodeId u) { return d.node_class(u) == 1; });
    const dc::u64 dim_cut = dc::net::cut_size(q, [&](dc::net::NodeId u) {
      return dc::bits::get(u, 2 * n - 2) == 1;
    });
    acc.expect(class_cut == d.node_count() / 2,
               "class cut = N/2 for n=" + std::to_string(n));
    acc.expect(class_cut == dim_cut,
               "dual-cube keeps hypercube-level bisection, n=" + std::to_string(n));
    cuts.add(d.name(), "by class", class_cut, d.edge_count());
    cuts.add(q.name(), "by top bit", dim_cut, q.edge_count());
  }
  std::cout << cuts << "\n";
  std::cout << "reading: D_n matches Q_(2n-1) in size with about half the\n"
               "links per node and one extra hop of diameter; CCC and the\n"
               "other derivatives cap the degree but pay more diameter; the\n"
               "class cut shows bisection-level bandwidth is preserved.\n";
  return acc.finish("tab_topology_properties");
}
