// Theorem 1: parallel prefix computation on D_n takes at most 2n+1
// communication steps and 2n computation steps.
//
// Sweeps n and reports measured simulator step counts against the paper's
// bounds (and against the size-matched hypercube Q_(2n-1), whose ascend
// prefix needs 2n-1 steps — the "almost as efficient as the hypercube"
// claim of the introduction).
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/cube_prefix.hpp"
#include "core/dual_prefix.hpp"
#include "core/formulas.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using dc::u64;
  namespace f = dc::core::formulas;
  dc::bench::Acceptance acc;
  const dc::core::Plus<u64> plus;

  dc::Table t("Theorem 1 — D_prefix on D_n (measured vs paper)");
  t.header({"n", "nodes", "comm meas", "comm paper<=", "comp meas",
            "comp paper<=", "Q_(2n-1) comm", "ok"});

  for (unsigned n = 1; n <= 9; ++n) {
    const dc::net::DualCube d(n);
    dc::sim::Machine m(d);
    dc::Rng rng(n);
    std::vector<u64> data(d.node_count());
    for (auto& x : data) x = rng.below(1000);

    const auto out = dc::core::dual_prefix(m, d, plus, data);
    // Correctness next to the counters: a wrong answer with the right step
    // count would be meaningless.
    u64 accum = 0;
    bool correct = true;
    for (std::size_t i = 0; i < data.size(); ++i) {
      accum += data[i];
      correct = correct && out[i] == accum;
    }
    const auto c = m.counters();
    const bool ok = correct && c.comm_cycles <= f::dual_prefix_comm_paper(n) &&
                    c.comp_steps <= f::dual_prefix_comp(n);
    acc.expect(ok, "n=" + std::to_string(n));
    t.add(n, d.node_count(), c.comm_cycles, f::dual_prefix_comm_paper(n),
          c.comp_steps, f::dual_prefix_comp(n), f::cube_prefix_comm(2 * n - 1),
          ok);
  }
  std::cout << t << "\n";
  std::cout << "note: measured comm is 2n (the implementation satisfies step 5\n"
               "of Algorithm 2 locally; the paper schedules one extra cross\n"
               "transfer and counts 2n+1 — see DESIGN.md).\n";
  return acc.finish("tab_theorem1_prefix");
}
