// Claims S1/S2 in one table: the dual-cube against the same-size hypercube
// on both of the paper's problems. Who wins what:
//
//   * hardware cost: D_n has about half the links of Q_(2n-1);
//   * prefix: nearly free — 2n cycles vs 2n-1 (Theorem 1);
//   * sorting: pays the emulation factor — 6n^2-ish vs 2n^2-n (Theorem 2),
//     ratio approaching 3.
//
// Both algorithms are executed on both networks (the hypercube ones on a
// real Q_(2n-1) machine), results verified, counters measured.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/cube_bitonic_sort.hpp"
#include "core/cube_prefix.hpp"
#include "core/dual_prefix.hpp"
#include "core/dual_sort.hpp"
#include "core/formulas.hpp"
#include "core/sequential.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using dc::u64;
  namespace f = dc::core::formulas;
  dc::bench::Acceptance acc;
  const dc::core::Plus<u64> plus;

  dc::Table t("D_n vs Q_(2n-1): links, prefix steps, sort steps (measured)");
  t.header({"n", "nodes", "links D/Q", "prefix D/Q", "sort D/Q", "sort ratio"});

  for (unsigned n = 2; n <= 6; ++n) {
    const dc::net::DualCube d(n);
    const dc::net::RecursiveDualCube r(n);
    const dc::net::Hypercube q(2 * n - 1);

    dc::Rng rng(n);
    std::vector<u64> data(d.node_count());
    for (auto& x : data) x = rng.below(1 << 20);

    // Prefix on both.
    dc::sim::Machine md(d);
    const auto dp = dc::core::dual_prefix(md, d, plus, data);
    dc::sim::Machine mq(q);
    const auto qp = dc::core::cube_prefix(mq, q, plus, data, true);
    const auto expect = dc::core::seq_inclusive_scan(plus, data);
    acc.expect(dp == expect && qp.prefix == expect,
               "prefix correct n=" + std::to_string(n));

    // Sort on both.
    auto keys_d = data;
    auto keys_q = data;
    dc::sim::Machine mr(r);
    dc::core::dual_sort(mr, r, keys_d);
    dc::sim::Machine mq2(q);
    dc::core::cube_bitonic_sort(mq2, q, keys_q);
    acc.expect(std::is_sorted(keys_d.begin(), keys_d.end()) &&
                   keys_d == keys_q,
               "sorts agree n=" + std::to_string(n));

    const u64 sd = mr.counters().comm_cycles;
    const u64 sq = mq2.counters().comm_cycles;
    acc.expect(sd <= 3 * sq, "sort overhead <= 3x n=" + std::to_string(n));
    t.add(n, d.node_count(),
          std::to_string(d.edge_count()) + "/" + std::to_string(q.edge_count()),
          std::to_string(md.counters().comm_cycles) + "/" +
              std::to_string(mq.counters().comm_cycles),
          std::to_string(sd) + "/" + std::to_string(sq),
          static_cast<double>(sd) / static_cast<double>(sq));
  }
  std::cout << t << "\n";
  std::cout << "shape check: prefix costs one extra cycle on the dual-cube;\n"
               "sorting costs < 3x; links are ~n/(2n-1) of the hypercube's.\n";
  return acc.finish("tab_vs_hypercube");
}
