// Permutation capability across network styles (extension of claim S1).
//
// The introduction positions the dual-cube against the bounded-degree
// hypercube derivatives; the Beneš network is the classic *rearrangeable*
// one — any permutation of N terminals in exactly 2 log N - 1 switch
// stages, computed offline by the looping algorithm. This bench puts the
// two styles side by side on identical random permutations:
//
//   * Beneš: offline switch settings, conflict-free by construction
//     (verified by simulating the fabric);
//   * dual-cube and hypercube: online store-and-forward packet routing
//     under the 1-port model (cycles include queueing).
#include <iostream>
#include <numeric>

#include "bench/bench_util.hpp"
#include "sim/store_forward.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "topology/benes.hpp"
#include "topology/dual_cube.hpp"
#include "topology/hypercube.hpp"
#include "topology/routing.hpp"

int main() {
  using dc::u64;
  using dc::net::NodeId;
  dc::bench::Acceptance acc;

  dc::Table t("Realizing random permutations: offline Beneš vs online routing");
  t.header({"N", "Benes stages", "Benes switches", "Benes ok", "D_n cycles",
            "Q_(2n-1) cycles"});

  for (unsigned n : {2u, 3u, 4u, 5u}) {
    const unsigned kbits = 2 * n - 1;
    const dc::net::Benes b(kbits);
    const dc::net::DualCube d(n);
    const dc::net::Hypercube q(kbits);
    const std::size_t N = d.node_count();

    // One fixed random permutation per size, shared by all three networks.
    std::vector<u64> perm(N);
    std::iota(perm.begin(), perm.end(), 0);
    dc::Rng rng(n);
    for (std::size_t i = N; i-- > 1;) std::swap(perm[i], perm[rng.below(i + 1)]);

    const bool benes_ok = b.apply(b.route(perm)) == perm;
    acc.expect(benes_ok, "Benes realizes the permutation, N=" + std::to_string(N));

    std::vector<NodeId> dest(perm.begin(), perm.end());
    dc::sim::Machine md(d);
    const auto rd = dc::sim::route_packets(md, dest, [&](NodeId s, NodeId v) {
      return dc::net::route_dual_cube(d, s, v);
    });
    dc::sim::Machine mq(q);
    const auto rq = dc::sim::route_packets(mq, dest, [&](NodeId s, NodeId v) {
      return dc::net::route_hypercube(q, s, v);
    });
    acc.expect(rd.cycles >= rq.cycles,
               "half the links cannot beat the hypercube, N=" + std::to_string(N));

    t.add(N, b.stages(), b.switch_count(), benes_ok, rd.cycles, rq.cycles);
  }
  std::cout << t << "\n";
  std::cout << "Beneš guarantees conflict-freedom with O(N log N) offline\n"
               "setup; the direct networks route online and absorb conflicts\n"
               "as queueing cycles.\n";
  return acc.finish("tab_permutation_networks");
}
