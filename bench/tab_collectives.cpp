// Extension table: collective communications on the dual-cube via the
// cluster technique (the paper's reference [7] direction). Broadcast,
// reduce, all-reduce and barrier all finish in 2n cycles — the diameter,
// hence optimal — and gather meets its 1-port lower bound of N-1 cycles up
// to pipeline fill.
#include <iostream>
#include <numeric>

#include "bench/bench_util.hpp"
#include "collectives/allgather.hpp"
#include "collectives/barrier.hpp"
#include "collectives/broadcast.hpp"
#include "collectives/gather.hpp"
#include "collectives/reduce.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using dc::u64;
  dc::bench::Acceptance acc;
  const dc::core::Plus<u64> plus;

  dc::Table t("Collectives on D_n (measured cycles vs lower bounds)");
  t.header({"n", "nodes", "diam", "bcast", "reduce", "allreduce", "barrier",
            "allgather", "gather", "scatter", "gather LB (N-1)"});

  for (unsigned n = 1; n <= 5; ++n) {
    const dc::net::DualCube d(n);
    dc::Rng rng(n);
    std::vector<u64> values(d.node_count());
    for (auto& x : values) x = rng.below(100);
    const u64 total = std::accumulate(values.begin(), values.end(), u64{0});

    dc::sim::Machine mb(d);
    const auto bc = dc::collectives::dual_broadcast<u64>(mb, d, 0, 7);
    acc.expect(std::all_of(bc.begin(), bc.end(), [](u64 v) { return v == 7; }),
               "broadcast correct n=" + std::to_string(n));
    acc.expect(mb.counters().comm_cycles == 2 * n,
               "broadcast in 2n cycles n=" + std::to_string(n));
    if (n >= 2) {
      acc.expect(mb.counters().comm_cycles == d.diameter(),
                 "broadcast diameter-optimal n=" + std::to_string(n));
    }

    dc::sim::Machine mr(d);
    acc.expect(dc::collectives::dual_reduce(mr, d, 0, plus, values) == total,
               "reduce correct n=" + std::to_string(n));

    dc::sim::Machine ma(d);
    const auto ar = dc::collectives::dual_allreduce(ma, d, plus, values);
    acc.expect(std::all_of(ar.begin(), ar.end(),
                           [&](u64 v) { return v == total; }),
               "allreduce correct n=" + std::to_string(n));

    dc::sim::Machine mba(d);
    acc.expect(dc::collectives::dual_barrier(mba, d) == d.node_count(),
               "barrier correct n=" + std::to_string(n));

    dc::sim::Machine mg(d);
    const auto gathered = dc::collectives::gather(mg, d, 0, values);
    acc.expect(gathered == values, "gather correct n=" + std::to_string(n));

    dc::sim::Machine mag(d);
    const auto all = dc::collectives::dual_allgather(mag, d, values);
    acc.expect(std::all_of(all.begin(), all.end(),
                           [&](const auto& v) { return v == values; }),
               "allgather correct n=" + std::to_string(n));
    acc.expect(mag.counters().comm_cycles == 2 * n,
               "allgather in 2n cycles n=" + std::to_string(n));

    dc::sim::Machine msc(d);
    const auto [scattered, screport] =
        dc::collectives::dual_scatter(msc, d, 0, values);
    acc.expect(scattered == values, "scatter correct n=" + std::to_string(n));

    t.add(n, d.node_count(), d.diameter(), mb.counters().comm_cycles,
          mr.counters().comm_cycles, ma.counters().comm_cycles,
          mba.counters().comm_cycles, mag.counters().comm_cycles,
          mg.counters().comm_cycles, screport.cycles, d.node_count() - 1);
  }
  std::cout << t << "\n";
  std::cout << "broadcast/reduce/allreduce/barrier run in exactly the\n"
               "diameter 2n; gather is port-limited at the root.\n";
  return acc.finish("tab_collectives");
}
