// Large-message broadcast: repeated binomial schedule (2n cycles per
// chunk) vs the pipeline over the embedded Hamiltonian ring ((N-2)+B
// cycles total). The crossover B* ~ (N-2)/(2n-1) separates the
// latency-bound and bandwidth-bound regimes.
//
// The second table overlaps the emulated prefix with the ring pipeline
// through schedule fusion (sim/fusion.hpp): both compiled schedules are
// merged wherever their cycles touch disjoint ports, so the fused stream
// replays |prefix| + |ring| - merged cycles with bit-identical results.
// Set DC_PIPELINE_JSON=<path> to export those rows for
// `check_bench_json.py pipeline-fusion`.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench/bench_util.hpp"
#include "collectives/fused_prefix_broadcast.hpp"
#include "collectives/pipeline_broadcast.hpp"
#include "core/sequential.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

struct FusionRow {
  unsigned n = 0;
  std::size_t chunks = 0;
  dc::u64 ring_cycles = 0;
  dc::u64 binomial_cycles = 0;
  std::size_t unfused_cycles = 0;
  std::size_t fused_cycles = 0;
  std::size_t merged = 0;
  bool correct = false;
};

void export_json(const std::vector<FusionRow>& rows, const char* path) {
  std::ofstream out(path);
  if (!out) return;
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FusionRow& r = rows[i];
    out << "  {\"n\": " << r.n << ", \"chunks\": " << r.chunks
        << ", \"ring_cycles\": " << r.ring_cycles
        << ", \"binomial_cycles\": " << r.binomial_cycles
        << ", \"unfused_cycles\": " << r.unfused_cycles
        << ", \"fused_cycles\": " << r.fused_cycles
        << ", \"merged\": " << r.merged
        << ", \"correct\": " << (r.correct ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main() {
  using dc::u64;
  dc::bench::Acceptance acc;

  dc::Table t("Broadcasting B chunks on D_n: binomial x B vs ring pipeline");
  t.header({"n", "nodes", "B", "binomial cycles", "pipeline cycles", "winner"});

  for (unsigned n : {2u, 3u, 4u}) {
    const dc::net::DualCube d(n);
    for (const std::size_t B :
         {std::size_t{1}, std::size_t{4}, std::size_t{16}, std::size_t{64},
          std::size_t{256}}) {
      dc::Rng rng(B);
      std::vector<u64> chunks(B);
      for (auto& c : chunks) c = rng();

      dc::sim::Machine mb(d);
      const auto out_b =
          dc::collectives::repeated_binomial_broadcast(mb, d, 0, chunks);
      dc::sim::Machine mp(d);
      const auto out_p =
          dc::collectives::ring_pipeline_broadcast(mp, d, 0, chunks);

      bool correct = true;
      for (dc::net::NodeId u = 0; u < d.node_count(); ++u)
        correct = correct && out_b[u] == chunks && out_p[u] == chunks;
      acc.expect(correct, "both broadcasts deliver all chunks, n=" +
                              std::to_string(n) + " B=" + std::to_string(B));

      const u64 cb = mb.counters().comm_cycles;
      const u64 cp = mp.counters().comm_cycles;
      acc.expect(cb == 2 * u64{n} * B, "binomial costs 2nB");
      acc.expect(cp == d.node_count() - 2 + B, "pipeline costs N-2+B");
      t.add(n, d.node_count(), B, cb, cp, cb < cp ? "binomial" : "pipeline");
    }
  }
  std::cout << t << "\n";
  std::cout << "small messages: pay the ring fill (N-2) once and lose;\n"
               "bulk messages: the pipeline's 1 cycle/chunk beats 2n\n"
               "cycles/chunk — the dilation-1 ring embedding doing work.\n\n";

  // ---- Fused prefix -> broadcast: overlap the emulated prefix's relay
  // cycles with the ring pipeline on disjoint ports.
  dc::Table tf("Fused emulated-prefix x ring-broadcast on RD_n");
  tf.header({"n", "nodes", "B", "unfused cycles", "fused cycles", "merged",
             "saved"});
  std::vector<FusionRow> rows;
  const dc::core::Plus<u64> plus;
  for (unsigned n : {2u, 3u, 4u}) {
    const dc::net::RecursiveDualCube r(n);
    const auto ring = dc::net::recursive_dual_cube_hamiltonian_cycle(r);
    for (const std::size_t B : {std::size_t{4}, std::size_t{32}}) {
      dc::Rng rng(n * 100 + B);
      std::vector<u64> data(r.node_count());
      for (auto& x : data) x = rng();
      std::vector<u64> chunks(B);
      for (auto& c : chunks) c = rng();

      // Sequential reference runs — these also record both schedules.
      dc::sim::Machine seq(r);
      const auto want_prefix = dc::core::emulated_prefix(seq, r, plus, data);
      const auto want_rx =
          dc::collectives::ring_pipeline_broadcast(seq, ring, 0, chunks);

      dc::sim::Machine mf(r);
      const auto out = dc::collectives::fused_prefix_broadcast(mf, r, plus,
                                                               data, 0, chunks);
      FusionRow row;
      row.n = n;
      row.chunks = B;
      row.ring_cycles = r.node_count() - 2 + B;
      row.binomial_cycles = 2 * u64{n} * B;
      row.unfused_cycles = out.unfused_cycles;
      row.fused_cycles = out.fused_steps;
      row.merged = out.merged;
      row.correct = out.fused && out.prefix == want_prefix &&
                    out.received == want_rx &&
                    want_prefix == dc::core::seq_inclusive_scan(plus, data);
      rows.push_back(row);

      acc.expect(out.fused, "second run fuses, n=" + std::to_string(n) +
                                " B=" + std::to_string(B));
      acc.expect(row.correct, "fused results bit-identical, n=" +
                                  std::to_string(n) +
                                  " B=" + std::to_string(B));
      acc.expect(out.fused_steps == out.unfused_cycles - out.merged,
                 "fused stream is |A|+|B|-merged cycles");
      acc.expect(mf.counters().comm_cycles == out.fused_steps,
                 "fused machine pays exactly the fused cycle count");
      tf.add(n, r.node_count(), B, row.unfused_cycles, row.fused_cycles,
             row.merged, row.unfused_cycles - row.fused_cycles);
    }
  }
  bool any_merged = false;
  for (const FusionRow& row : rows) any_merged = any_merged || row.merged > 0;
  acc.expect(any_merged, "fusion reduces total replay cycles somewhere");
  std::cout << tf << "\n";
  std::cout << "the prefix's relayed dimension steps idle half the ports;\n"
               "the ring pipeline slots into them, so independent work\n"
               "shares cycles instead of queueing behind the prefix.\n";
  if (const char* path = std::getenv("DC_PIPELINE_JSON"))
    export_json(rows, path);
  return acc.finish("tab_pipeline_broadcast");
}
