// Large-message broadcast: repeated binomial schedule (2n cycles per
// chunk) vs the pipeline over the embedded Hamiltonian ring ((N-2)+B
// cycles total). The crossover B* ~ (N-2)/(2n-1) separates the
// latency-bound and bandwidth-bound regimes.
#include <iostream>

#include "bench/bench_util.hpp"
#include "collectives/pipeline_broadcast.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using dc::u64;
  dc::bench::Acceptance acc;

  dc::Table t("Broadcasting B chunks on D_n: binomial x B vs ring pipeline");
  t.header({"n", "nodes", "B", "binomial cycles", "pipeline cycles", "winner"});

  for (unsigned n : {2u, 3u, 4u}) {
    const dc::net::DualCube d(n);
    for (const std::size_t B :
         {std::size_t{1}, std::size_t{4}, std::size_t{16}, std::size_t{64},
          std::size_t{256}}) {
      dc::Rng rng(B);
      std::vector<u64> chunks(B);
      for (auto& c : chunks) c = rng();

      dc::sim::Machine mb(d);
      const auto out_b =
          dc::collectives::repeated_binomial_broadcast(mb, d, 0, chunks);
      dc::sim::Machine mp(d);
      const auto out_p =
          dc::collectives::ring_pipeline_broadcast(mp, d, 0, chunks);

      bool correct = true;
      for (dc::net::NodeId u = 0; u < d.node_count(); ++u)
        correct = correct && out_b[u] == chunks && out_p[u] == chunks;
      acc.expect(correct, "both broadcasts deliver all chunks, n=" +
                              std::to_string(n) + " B=" + std::to_string(B));

      const u64 cb = mb.counters().comm_cycles;
      const u64 cp = mp.counters().comm_cycles;
      acc.expect(cb == 2 * u64{n} * B, "binomial costs 2nB");
      acc.expect(cp == d.node_count() - 2 + B, "pipeline costs N-2+B");
      t.add(n, d.node_count(), B, cb, cp, cb < cp ? "binomial" : "pipeline");
    }
  }
  std::cout << t << "\n";
  std::cout << "small messages: pay the ring fill (N-2) once and lose;\n"
               "bulk messages: the pipeline's 1 cycle/chunk beats 2n\n"
               "cycles/chunk — the dilation-1 ring embedding doing work.\n";
  return acc.finish("tab_pipeline_broadcast");
}
