// Link hot-spot analysis: where does the traffic go?
//
// The dual-cube funnels all inter-cluster traffic through each node's
// single cross-edge. This bench runs Algorithm 3 (sorting) and a random
// permutation routing with per-edge counters enabled and reports the load
// split between cross-edges and cluster-edges — the quantitative form of
// "the cross-edges are the bottleneck" behind the 3x emulation factor and
// the half-swap routing results.
#include <iostream>
#include <numeric>

#include "bench/bench_util.hpp"
#include "core/dual_sort.hpp"
#include "sim/profile.hpp"
#include "sim/store_forward.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "topology/routing.hpp"

namespace {

using dc::u64;
using dc::net::NodeId;

struct LoadSplit {
  u64 cross_total = 0;
  u64 cluster_total = 0;
  u64 cross_max = 0;
  u64 cluster_max = 0;
};

/// Sums directed-edge loads, classifying by whether the edge flips the
/// class bit (works for both presentations: in the recursive presentation
/// the class dimension is bit 0, in the standard one bit 2n-2; we pass the
/// class-bit index in).
///
/// One edge_load_merged() snapshot covers every edge: CSR slots are
/// row-major (rows in node order, neighbors sorted within a row), so
/// walking row(u) for ascending u visits slots 0..E-1 sequentially — no
/// per-edge slot lookup and no O(workers) rescan per edge like the old
/// edge_load(u, v) loop.
LoadSplit split_loads(const dc::sim::Machine& m, unsigned class_bit) {
  LoadSplit s;
  const auto& adj = m.topology().flat_adjacency();
  const std::vector<u64> loads = m.edge_load_merged();
  const auto is_cross = [&](NodeId u, NodeId v) {
    return (u ^ v) == (u64{1} << class_bit);
  };
  std::size_t slot = 0;
  for (NodeId u = 0; u < adj.node_count(); ++u) {
    for (const NodeId v : adj.row(u)) {
      const u64 load = loads[slot++];
      if (is_cross(u, v)) {
        s.cross_total += load;
      } else {
        s.cluster_total += load;
      }
    }
  }
  // Per-class maxima come from the report layer's deterministic hot-edge
  // ranking over the same snapshot (top-1 of each class).
  const auto cross = dc::sim::top_k_hot_edges(adj, loads, 1, is_cross);
  const auto cluster = dc::sim::top_k_hot_edges(
      adj, loads, 1, [&](NodeId u, NodeId v) { return !is_cross(u, v); });
  if (!cross.empty()) s.cross_max = cross[0].load;
  if (!cluster.empty()) s.cluster_max = cluster[0].load;
  return s;
}

}  // namespace

int main() {
  dc::bench::Acceptance acc;

  dc::Table t("Per-link load (messages per directed edge over the run)");
  t.header({"workload", "n", "cross avg", "cluster avg", "cross max",
            "cluster max", "cross/cluster avg"});

  for (unsigned n : {3u, 4u}) {
    // Workload 1: Algorithm 3 on the recursive presentation (class bit 0).
    {
      const dc::net::RecursiveDualCube r(n);
      dc::sim::Machine m(r);
      m.enable_edge_load();
      auto keys = dc::generate_keys(dc::KeyDistribution::kUniform,
                                    r.node_count(), n);
      dc::core::dual_sort(m, r, keys);
      const auto s = split_loads(m, 0);
      const double n_cross = static_cast<double>(r.node_count());  // directed
      const double n_cluster = static_cast<double>(r.node_count() * (n - 1));
      const double cross_avg = static_cast<double>(s.cross_total) / n_cross;
      const double cluster_avg =
          static_cast<double>(s.cluster_total) / n_cluster;
      acc.expect(cross_avg > cluster_avg,
                 "sorting loads cross-edges hardest, n=" + std::to_string(n));
      t.add("D_sort", n, cross_avg, cluster_avg, s.cross_max, s.cluster_max,
            cross_avg / cluster_avg);
    }
    // Workload 2: random permutation routing (standard presentation,
    // class bit 2n-2).
    {
      const dc::net::DualCube d(n);
      dc::sim::Machine m(d);
      m.enable_edge_load();
      std::vector<NodeId> dest(d.node_count());
      std::iota(dest.begin(), dest.end(), 0);
      dc::Rng rng(n);
      for (std::size_t i = dest.size(); i-- > 1;)
        std::swap(dest[i], dest[rng.below(i + 1)]);
      dc::sim::route_packets(m, dest, [&](NodeId s, NodeId v) {
        return dc::net::route_dual_cube(d, s, v);
      });
      const auto s = split_loads(m, 2 * n - 2);
      const double cross_avg =
          static_cast<double>(s.cross_total) / static_cast<double>(d.node_count());
      const double cluster_avg = static_cast<double>(s.cluster_total) /
                                 static_cast<double>(d.node_count() * (n - 1));
      t.add("random perm", n, cross_avg, cluster_avg, s.cross_max,
            s.cluster_max, cluster_avg > 0 ? cross_avg / cluster_avg : 0.0);
    }
  }
  std::cout << t << "\n";
  std::cout << "each node's single cross-edge carries a multiple of the\n"
               "per-edge cluster load — the structural price of halving the\n"
               "degree, and exactly where the 3-hop relays concentrate.\n";
  return acc.finish("tab_hotspot");
}
