// Ablation: the cluster technique vs generic spanning-tree collectives.
//
// Tree-based broadcast/reduce work on any topology but serialize at
// high-fanout tree nodes under the 1-port model; the paper's cluster
// technique exploits the dual-cube's structure (binomial trees inside
// clusters + the cross-edge perfect matching) to finish in exactly 2n
// cycles. This table measures the gap — the collective-communication
// analogue of the prefix ablation in ablation_emulation.cpp.
#include <iostream>
#include <numeric>

#include "bench/bench_util.hpp"
#include "collectives/broadcast.hpp"
#include "collectives/reduce.hpp"
#include "collectives/tree.hpp"
#include "support/table.hpp"

int main() {
  using dc::u64;
  dc::bench::Acceptance acc;
  const dc::core::Plus<u64> plus;

  dc::Table t("Broadcast/reduce on D_n: cluster technique vs BFS tree");
  t.header({"n", "nodes", "bcast cluster", "bcast tree", "reduce cluster",
            "reduce tree"});

  for (unsigned n : {2u, 3u, 4u, 5u, 6u}) {
    const dc::net::DualCube d(n);
    std::vector<u64> values(d.node_count());
    std::iota(values.begin(), values.end(), 1);
    const u64 expected = std::accumulate(values.begin(), values.end(), u64{0});

    dc::sim::Machine mc(d);
    dc::collectives::dual_broadcast<u64>(mc, d, 0, 9);
    dc::sim::Machine mt(d);
    dc::collectives::tree_broadcast<u64>(mt, d, 0, 9);

    dc::sim::Machine rc(d);
    const u64 sum_cluster = dc::collectives::dual_reduce(rc, d, 0, plus, values);
    dc::sim::Machine rt(d);
    const u64 sum_tree = dc::collectives::tree_reduce(rt, d, 0, plus, values);

    acc.expect(sum_cluster == expected && sum_tree == expected,
               "both reduces correct n=" + std::to_string(n));
    acc.expect(mc.counters().comm_cycles == 2 * n,
               "cluster broadcast 2n cycles n=" + std::to_string(n));
    acc.expect(mc.counters().comm_cycles <= mt.counters().comm_cycles,
               "cluster technique never loses (broadcast) n=" + std::to_string(n));
    acc.expect(rc.counters().comm_cycles <= rt.counters().comm_cycles,
               "cluster technique never loses (reduce) n=" + std::to_string(n));

    t.add(n, d.node_count(), mc.counters().comm_cycles,
          mt.counters().comm_cycles, rc.counters().comm_cycles,
          rt.counters().comm_cycles);
  }
  std::cout << t << "\n";
  std::cout << "the generic tree serializes at high-fanout nodes; the\n"
               "cluster technique keeps every phase fully parallel.\n";
  return acc.finish("ablation_tree_collectives");
}
