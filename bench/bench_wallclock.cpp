// Wall-clock microbenchmarks of the simulator (google-benchmark).
//
// These measure the *simulator's* throughput, not any physical machine —
// useful for tracking regressions in this codebase and for sizing
// experiments, and explicitly not comparable to the paper (which reports
// model step counts only; see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <numeric>

#include "collectives/broadcast.hpp"
#include "core/block_sort.hpp"
#include "core/cube_bitonic_sort.hpp"
#include "core/cube_prefix.hpp"
#include "core/dual_prefix.hpp"
#include "core/dual_sort.hpp"
#include "support/rng.hpp"

namespace {

using dc::u64;

void BM_DualPrefix(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const dc::net::DualCube d(n);
  const dc::core::Plus<u64> plus;
  dc::Rng rng(1);
  std::vector<u64> data(d.node_count());
  for (auto& x : data) x = rng();
  for (auto _ : state) {
    dc::sim::Machine m(d);
    benchmark::DoNotOptimize(dc::core::dual_prefix(m, d, plus, data));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d.node_count()));
}
BENCHMARK(BM_DualPrefix)->DenseRange(2, 8, 2)->Unit(benchmark::kMicrosecond);

void BM_CubePrefix(benchmark::State& state) {
  const unsigned d = static_cast<unsigned>(state.range(0));
  const dc::net::Hypercube q(d);
  const dc::core::Plus<u64> plus;
  dc::Rng rng(1);
  std::vector<u64> data(q.node_count());
  for (auto& x : data) x = rng();
  for (auto _ : state) {
    dc::sim::Machine m(q);
    benchmark::DoNotOptimize(dc::core::cube_prefix(m, q, plus, data, true));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(q.node_count()));
}
BENCHMARK(BM_CubePrefix)->DenseRange(3, 15, 4)->Unit(benchmark::kMicrosecond);

void BM_DualSort(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const dc::net::RecursiveDualCube r(n);
  const auto input =
      dc::generate_keys(dc::KeyDistribution::kUniform, r.node_count(), 3);
  for (auto _ : state) {
    auto keys = input;
    dc::sim::Machine m(r);
    dc::core::dual_sort(m, r, keys);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(r.node_count()));
}
BENCHMARK(BM_DualSort)->DenseRange(2, 5, 1)->Unit(benchmark::kMicrosecond);

void BM_CubeBitonicSort(benchmark::State& state) {
  const unsigned d = static_cast<unsigned>(state.range(0));
  const dc::net::Hypercube q(d);
  const auto input =
      dc::generate_keys(dc::KeyDistribution::kUniform, q.node_count(), 3);
  for (auto _ : state) {
    auto keys = input;
    dc::sim::Machine m(q);
    dc::core::cube_bitonic_sort(m, q, keys);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(q.node_count()));
}
BENCHMARK(BM_CubeBitonicSort)->DenseRange(3, 9, 2)->Unit(benchmark::kMicrosecond);

void BM_BlockSort(benchmark::State& state) {
  const unsigned n = 3;
  const std::size_t block = static_cast<std::size_t>(state.range(0));
  const dc::net::RecursiveDualCube r(n);
  const auto input = dc::generate_keys(dc::KeyDistribution::kUniform,
                                       r.node_count() * block, 3);
  for (auto _ : state) {
    auto keys = input;
    dc::sim::Machine m(r);
    dc::core::block_sort(m, r, keys, block);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_BlockSort)->RangeMultiplier(8)->Range(1, 512)->Unit(benchmark::kMicrosecond);

void BM_DualBroadcast(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const dc::net::DualCube d(n);
  for (auto _ : state) {
    dc::sim::Machine m(d);
    benchmark::DoNotOptimize(dc::collectives::dual_broadcast<u64>(m, d, 0, 1));
  }
}
BENCHMARK(BM_DualBroadcast)->DenseRange(2, 6, 2)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
