// Wall-clock microbenchmarks of the simulator (google-benchmark).
//
// These measure the *simulator's* throughput, not any physical machine —
// useful for tracking regressions in this codebase and for sizing
// experiments, and explicitly not comparable to the paper (which reports
// model step counts only; see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iomanip>
#include <numeric>
#include <string>
#include <vector>

#include "collectives/broadcast.hpp"
#include "sim/schedule_store.hpp"
#include "core/block_prefix.hpp"
#include "core/block_sort.hpp"
#include "core/cube_bitonic_sort.hpp"
#include "core/cube_prefix.hpp"
#include "core/dual_prefix.hpp"
#include "core/dual_sort.hpp"
#include "core/sharded_prefix.hpp"
#include "sim/machine.hpp"
#include "sim/oblivious.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "topology/hypercube.hpp"

namespace {

using dc::u64;

void BM_DualPrefix(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const dc::net::DualCube d(n);
  const dc::core::Plus<u64> plus;
  dc::Rng rng(1);
  std::vector<u64> data(d.node_count());
  for (auto& x : data) x = rng();
  for (auto _ : state) {
    dc::sim::Machine m(d);
    benchmark::DoNotOptimize(dc::core::dual_prefix(m, d, plus, data));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d.node_count()));
}
BENCHMARK(BM_DualPrefix)->DenseRange(2, 8, 2)->Unit(benchmark::kMicrosecond);

// Same run with dcsim's always-on crash-buffer flight recorder attached
// (small per-slot rings, no --trace/--profile). check_bench_json.py gates
// this median at <= 1.02x the bare BM_DualPrefix median: the flight
// recorder must stay cheap enough to leave on for every run.
void BM_DualPrefixFlightRecorder(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const dc::net::DualCube d(n);
  const dc::core::Plus<u64> plus;
  dc::Rng rng(1);
  std::vector<u64> data(d.node_count());
  for (auto& x : data) x = rng();
  // One process-lifetime recorder, as in dcsim: the rings wrap freely and
  // only the steady-state per-event cost is on the clock.
  dc::sim::TraceRecorder rec(dc::ThreadPool::shared().size() + 1,
                             /*caller_capacity=*/256, /*worker_capacity=*/64);
  for (auto _ : state) {
    dc::sim::Machine m(d);
    m.set_trace(&rec, "measured");
    benchmark::DoNotOptimize(dc::core::dual_prefix(m, d, plus, data));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d.node_count()));
}
BENCHMARK(BM_DualPrefixFlightRecorder)
    ->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_CubePrefix(benchmark::State& state) {
  const unsigned d = static_cast<unsigned>(state.range(0));
  const dc::net::Hypercube q(d);
  const dc::core::Plus<u64> plus;
  dc::Rng rng(1);
  std::vector<u64> data(q.node_count());
  for (auto& x : data) x = rng();
  for (auto _ : state) {
    dc::sim::Machine m(q);
    benchmark::DoNotOptimize(dc::core::cube_prefix(m, q, plus, data, true));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(q.node_count()));
}
BENCHMARK(BM_CubePrefix)->DenseRange(3, 15, 4)->Unit(benchmark::kMicrosecond);

void BM_DualSort(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const dc::net::RecursiveDualCube r(n);
  const auto input =
      dc::generate_keys(dc::KeyDistribution::kUniform, r.node_count(), 3);
  for (auto _ : state) {
    auto keys = input;
    dc::sim::Machine m(r);
    dc::core::dual_sort(m, r, keys);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(r.node_count()));
}
BENCHMARK(BM_DualSort)->DenseRange(2, 5, 1)->Unit(benchmark::kMicrosecond);

void BM_CubeBitonicSort(benchmark::State& state) {
  const unsigned d = static_cast<unsigned>(state.range(0));
  const dc::net::Hypercube q(d);
  const auto input =
      dc::generate_keys(dc::KeyDistribution::kUniform, q.node_count(), 3);
  for (auto _ : state) {
    auto keys = input;
    dc::sim::Machine m(q);
    dc::core::cube_bitonic_sort(m, q, keys);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(q.node_count()));
}
BENCHMARK(BM_CubeBitonicSort)->DenseRange(3, 9, 2)->Unit(benchmark::kMicrosecond);

void BM_BlockSort(benchmark::State& state) {
  const unsigned n = 3;
  const std::size_t block = static_cast<std::size_t>(state.range(0));
  const dc::net::RecursiveDualCube r(n);
  const auto input = dc::generate_keys(dc::KeyDistribution::kUniform,
                                       r.node_count() * block, 3);
  for (auto _ : state) {
    auto keys = input;
    dc::sim::Machine m(r);
    dc::core::block_sort(m, r, keys, block);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_BlockSort)->RangeMultiplier(8)->Range(1, 512)->Unit(benchmark::kMicrosecond);

void BM_BlockSortAoS(benchmark::State& state) {
  const unsigned n = 3;
  const std::size_t block = static_cast<std::size_t>(state.range(0));
  const dc::net::RecursiveDualCube r(n);
  const auto input = dc::generate_keys(dc::KeyDistribution::kUniform,
                                       r.node_count() * block, 3);
  for (auto _ : state) {
    auto keys = input;
    dc::sim::Machine m(r);
    dc::core::block_sort_aos(m, r, keys, block);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_BlockSortAoS)->RangeMultiplier(8)->Range(1, 512)->Unit(benchmark::kMicrosecond);

void BM_BlockPrefix(benchmark::State& state) {
  const unsigned n = 3;
  const std::size_t block = static_cast<std::size_t>(state.range(0));
  const dc::net::DualCube d(n);
  const dc::core::Plus<u64> plus;
  dc::Rng rng(1);
  std::vector<u64> data(d.node_count() * block);
  for (auto& x : data) x = rng();
  for (auto _ : state) {
    dc::sim::Machine m(d);
    benchmark::DoNotOptimize(dc::core::block_prefix(m, d, plus, data, block));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_BlockPrefix)->RangeMultiplier(8)->Range(1, 512)->Unit(benchmark::kMicrosecond);

// Raw merge-split kernel throughput (no simulator): two sorted width-m key
// blocks, alternating keep-min / keep-max so both directions are measured.
// Uniform random blocks interleave, so the disjoint fast path stays cold
// and the merge loop itself is what's timed.
template <typename Key>
void merge_split_bench(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  const auto ka = dc::generate_keys(dc::KeyDistribution::kUniform, width, 5);
  const auto kb = dc::generate_keys(dc::KeyDistribution::kUniform, width, 7);
  std::vector<Key> a(ka.begin(), ka.end());
  std::vector<Key> b(kb.begin(), kb.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<Key> out(width);
  bool keep_min = true;
  for (auto _ : state) {
    dc::core::detail::merge_split(a.data(), b.data(), width, keep_min,
                                  out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
    keep_min = !keep_min;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(width));
}

// 8-byte keys — what block_sort actually merges. Always the scalar
// two-pointer path (the vector dispatcher declines 8-byte keys; AVX2 has
// no 64-bit min/max and the network measured ~2x slower).
void BM_MergeSplit(benchmark::State& state) {
  merge_split_bench<u64>(state);
}
BENCHMARK(BM_MergeSplit)
    ->RangeMultiplier(8)
    ->Range(8, 512)
    ->Unit(benchmark::kNanosecond);

// 4-byte keys — the shape the vector kernel covers (native 32-bit min/max,
// 8 lanes), so DC_SIMD=scalar vs auto isolates the kernel's speedup.
void BM_MergeSplit32(benchmark::State& state) {
  merge_split_bench<dc::u32>(state);
}
BENCHMARK(BM_MergeSplit32)
    ->RangeMultiplier(8)
    ->Range(8, 512)
    ->Unit(benchmark::kNanosecond);

// Steady-state block replay gather in isolation: a width-m all-exchange
// schedule replayed from a node-major plane source (the
// comm_cycle_scheduled_blocks PlaneSrc hot path — width-specialized block
// copies, or the masked vector gather at width 1).
void BM_BlockGather(benchmark::State& state) {
  const unsigned d = 9;
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  const dc::net::Hypercube q(d);
  dc::sim::Machine m(q);
  m.set_schedule_path(dc::sim::SchedulePath::kCompiled);
  dc::sim::ObliviousSection sec(m, "bench_block_gather", {d, width});
  std::vector<u64> plane(q.node_count() * width);
  std::iota(plane.begin(), plane.end(), 0);
  if (!sec.replaying()) {
    for (unsigned j = 0; j < d; ++j) {
      auto inbox = sec.exchange_blocks<u64>(
          width, [&](dc::net::NodeId u) { return q.neighbor(u, j); },
          dc::sim::PlaneSrc<u64>{plane.data(), width});
      benchmark::DoNotOptimize(inbox.has(0));
    }
    sec.commit();
  }
  const auto sched = dc::sim::ScheduleCache::instance().find(sec.key());
  unsigned i = 0;
  for (auto _ : state) {
    auto inbox = m.comm_cycle_scheduled_blocks<u64>(
        sched->cycle(i), width, dc::sim::PlaneSrc<u64>{plane.data(), width});
    benchmark::DoNotOptimize(inbox.has(0));
    i = (i + 1 == d) ? 0 : i + 1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(q.node_count() * width));
}
BENCHMARK(BM_BlockGather)
    ->RangeMultiplier(8)
    ->Range(1, 64)
    ->Unit(benchmark::kMicrosecond);

void BM_DualBroadcast(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const dc::net::DualCube d(n);
  for (auto _ : state) {
    dc::sim::Machine m(d);
    benchmark::DoNotOptimize(dc::collectives::dual_broadcast<u64>(m, d, 0, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d.node_count()));
}
BENCHMARK(BM_DualBroadcast)->DenseRange(2, 6, 2)->Unit(benchmark::kMicrosecond);

// Cluster-sharded D_prefix (core/sharded_prefix.hpp): args are
// {n, shards, capped}. One engine is reused across iterations, so
// steady-state runs replay the pooled planes and scratch with zero
// allocations; input comes from a stateless generator and output is
// consumed in place, so the benchmark measures the engine, not vector
// setup. items/sec counts finished nodes — the nodes/sec-vs-shard-count
// table BENCH_sim.json records.
//
// capped=1 rows all share one fixed memory budget, the K=4 working set
// (8N bytes — independent of K), so the row family answers "at this
// memory cap, what does shard count buy?": shards whose working set fits
// the cap run their cycles in core, while coarser shardings must stream
// t/s through the spill file on every synchronous cycle (the
// cycle-synchrony contract, sim/shard.hpp). That out-of-core re-streaming
// is what K>=4 buys back — the source of the K=4 vs K=1 speedup on a
// single core.
void BM_ShardedDualPrefix(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const unsigned shards = static_cast<unsigned>(state.range(1));
  const dc::net::DualCube d(n);
  const std::size_t budget =
      state.range(2) != 0
          ? (static_cast<std::size_t>(d.node_count()) / 4) *
                (3 * sizeof(u64) + 8)
          : 0;
  dc::sim::ShardEngine eng(d, shards, budget);
  const dc::core::Plus<u64> plus;
  const auto data_of = [](u64 i) -> u64 {
    return (i * 0x9E3779B97F4A7C15ull) >> 32;
  };
  u64 digest = 0;
  for (auto _ : state) {
    dc::core::sharded_dual_prefix(
        eng, plus, data_of,
        [&](u64, const u64* values, std::size_t count) {
          digest ^= values[count - 1];
        });
    benchmark::DoNotOptimize(digest);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d.node_count()));
}
// CI runs the small sizes; the mega rows (8.4M / 33.5M nodes — the ISSUE's
// >= 10M-node scale) only register under DC_BENCH_MEGA=1 so the smoke job
// stays fast.
void ShardedDualPrefixArgs(benchmark::internal::Benchmark* b) {
  for (long k : {1, 2, 4}) b->Args({8, k, 0});
  const char* mega = std::getenv("DC_BENCH_MEGA");
  if (mega && *mega == '1') {
    for (long k : {1, 2, 4, 8}) b->Args({12, k, 1});
    for (long k : {1, 2, 4, 8}) b->Args({13, k, 1});
  }
}
BENCHMARK(BM_ShardedDualPrefix)
    ->Apply(ShardedDualPrefixArgs)
    ->Unit(benchmark::kMillisecond);

// Steady-state communication cycles in isolation: one Machine reused across
// iterations, so after the first cycle every inbox comes from the arena pool
// and the cycle performs zero heap allocations. Each iteration exchanges
// along a rotating hypercube dimension (every node sends, every node
// receives); items/sec counts delivered messages.
void BM_CommCycle(benchmark::State& state) {
  const unsigned d = static_cast<unsigned>(state.range(0));
  const dc::net::Hypercube q(d);
  dc::sim::Machine m(q);
  unsigned i = 0;
  for (auto _ : state) {
    auto inbox = m.comm_cycle<u64>([&](dc::net::NodeId u) {
      return dc::sim::Send<u64>{q.neighbor(u, i), static_cast<u64>(u)};
    });
    benchmark::DoNotOptimize(inbox[0]);
    i = (i + 1 == d) ? 0 : i + 1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(q.node_count()));
}
BENCHMARK(BM_CommCycle)->DenseRange(7, 15, 4)->Unit(benchmark::kMicrosecond);

// The compiled counterpart of BM_CommCycle: the same rotating-dimension
// exchange, but replayed through Machine::comm_cycle_scheduled from a
// schedule recorded once before the timing loop. The gap between the two
// benchmarks is the per-cycle cost of planning + validation + claiming.
void BM_CommCycleScheduled(benchmark::State& state) {
  const unsigned d = static_cast<unsigned>(state.range(0));
  const dc::net::Hypercube q(d);
  dc::sim::Machine m(q);
  m.set_schedule_path(dc::sim::SchedulePath::kCompiled);
  dc::sim::ObliviousSection sec(m, "bench_comm_cycle", {d});
  if (!sec.replaying()) {
    for (unsigned j = 0; j < d; ++j) {
      auto inbox = sec.exchange<u64>(
          [&](dc::net::NodeId u) { return q.neighbor(u, j); },
          [](dc::net::NodeId u) { return static_cast<u64>(u); });
      benchmark::DoNotOptimize(inbox[0]);
    }
    sec.commit();
  }
  const auto sched = dc::sim::ScheduleCache::instance().find(sec.key());
  unsigned i = 0;
  for (auto _ : state) {
    auto inbox = m.comm_cycle_scheduled<u64>(
        sched->cycle(i), [](dc::net::NodeId u) { return static_cast<u64>(u); });
    benchmark::DoNotOptimize(inbox[0]);
    i = (i + 1 == d) ? 0 : i + 1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(q.node_count()));
}
BENCHMARK(BM_CommCycleScheduled)
    ->DenseRange(7, 15, 4)
    ->Unit(benchmark::kMicrosecond);

// Cold vs warm start of the compiled D_n prefix. Cold: every iteration
// starts from an empty ScheduleCache with no persistent store, so the run
// pays the full record-and-validate pass before it can replay — the
// first-process latency this repo had before the schedule store. Warm: a
// store directory is primed once, and every iteration drops in-process
// residency but keeps the store attached, so the section faults its
// schedule in from the mmapped file and goes straight to replay. The
// BM_WarmStart/<n>_median / BM_ColdStart/<n>_median ratio is gated at
// <= 0.5 by tools/check_bench_json.py on trajectory files.
void BM_ColdStart(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const dc::net::DualCube d(n);
  const dc::core::Plus<u64> plus;
  dc::Rng rng(1);
  std::vector<u64> data(d.node_count());
  for (auto& x : data) x = rng();
  auto& cache = dc::sim::ScheduleCache::instance();
  cache.attach_store(nullptr);
  for (auto _ : state) {
    cache.clear();
    dc::sim::Machine m(d);
    benchmark::DoNotOptimize(dc::core::dual_prefix(m, d, plus, data));
  }
  cache.clear();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d.node_count()));
}
BENCHMARK(BM_ColdStart)
    ->Arg(8)
    ->Repetitions(5)
    ->ReportAggregatesOnly(true)
    ->Unit(benchmark::kMillisecond);

void BM_WarmStart(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const dc::net::DualCube d(n);
  const dc::core::Plus<u64> plus;
  dc::Rng rng(1);
  std::vector<u64> data(d.node_count());
  for (auto& x : data) x = rng();
  auto& cache = dc::sim::ScheduleCache::instance();
  char dir[] = "/tmp/dcsched_bench_XXXXXX";
  if (!::mkdtemp(dir)) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  dc::sim::attach_schedule_store(dir);
  cache.clear();
  {
    dc::sim::Machine m(d);  // prime: record once, write through to disk
    benchmark::DoNotOptimize(dc::core::dual_prefix(m, d, plus, data));
  }
  for (auto _ : state) {
    cache.clear();  // drop residency; the store stays attached
    dc::sim::Machine m(d);
    benchmark::DoNotOptimize(dc::core::dual_prefix(m, d, plus, data));
  }
  cache.attach_store(nullptr);
  cache.clear();
  std::system((std::string("rm -rf ") + dir).c_str());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d.node_count()));
}
BENCHMARK(BM_WarmStart)
    ->Arg(8)
    ->Repetitions(5)
    ->ReportAggregatesOnly(true)
    ->Unit(benchmark::kMillisecond);

// Chunked parallel-loop dispatch: per-index accumulate into a flat array.
// Ranges at or below the inline threshold measure the pure loop; larger
// ranges add the ticket-dispatch cost whenever the pool has more than one
// worker (set DC_THREADS to control this).
void BM_ParallelFor(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<u64> data(n, 0);
  for (auto _ : state) {
    dc::parallel_for_chunked(0, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) data[i] += i;
    });
    benchmark::DoNotOptimize(data.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelFor)
    ->RangeMultiplier(16)
    ->Range(1 << 10, 1 << 22)
    ->Unit(benchmark::kMicrosecond);

// Writes every finished run (including repetition aggregates such as
// "_median") to a machine-readable JSON array: one object per run with
// "name", "ns_per_op" and "items_per_sec". The destination defaults to
// BENCH_sim.json in the working directory; override with DC_BENCH_JSON.
// Doubles as the display reporter (it forwards to a ConsoleReporter) so it
// can run without the --benchmark_out flag the file-reporter slot requires.
class JsonSummaryReporter : public benchmark::BenchmarkReporter {
 public:
  explicit JsonSummaryReporter(std::string path) : path_(std::move(path)) {}

  bool ReportContext(const Context& context) override {
    return console_.ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    console_.ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      Entry e;
      e.name = run.benchmark_name();
      e.ns_per_op = run.real_accumulated_time / iters * 1e9;
      const auto it = run.counters.find("items_per_second");
      e.items_per_sec =
          it != run.counters.end() ? static_cast<double>(it->second) : 0.0;
      entries_.push_back(std::move(e));
    }
  }

  void Finalize() override {
    console_.Finalize();
    std::ofstream out(path_);
    if (!out) return;
    out << std::fixed << std::setprecision(2) << "[\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out << "  {\"name\": \"" << e.name << "\", \"ns_per_op\": " << e.ns_per_op
          << ", \"items_per_sec\": " << e.items_per_sec << "}"
          << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    out << "]\n";
  }

 private:
  struct Entry {
    std::string name;
    double ns_per_op = 0.0;
    double items_per_sec = 0.0;
  };
  benchmark::ConsoleReporter console_;
  std::string path_;
  std::vector<Entry> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::cout << "DC_SIMD dispatch: "
            << dc::sim::simd::isa_name(dc::sim::simd::active_isa()) << "\n";
  const char* path = std::getenv("DC_BENCH_JSON");
  JsonSummaryReporter json(path ? path : "BENCH_sim.json");
  benchmark::RunSpecifiedBenchmarks(&json);
  benchmark::Shutdown();
  return 0;
}
