// Future-work item 2: "do some simulations and empirical analysis".
//
// Store-and-forward permutation routing under the 1-port model, dual-cube
// versus the same-size hypercube, across classic traffic patterns:
//   * random permutations (average case),
//   * bit-complement (each node sends to its bitwise complement),
//   * transpose-like swap of the two address halves (adversarial for the
//     dual-cube: every packet changes cluster).
// Reported: drain cycles, average packet latency, peak queue depth. The
// expected shape: the dual-cube tracks the hypercube within a small
// constant while providing only ~half the links.
#include <iostream>

#include "bench/bench_util.hpp"
#include "sim/store_forward.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "topology/dual_cube.hpp"
#include "topology/hypercube.hpp"
#include "topology/routing.hpp"

namespace {

using dc::u64;
using dc::net::NodeId;

std::vector<NodeId> random_permutation(std::size_t n, u64 seed) {
  std::vector<NodeId> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  dc::Rng rng(seed);
  for (std::size_t i = n; i-- > 1;) {
    std::swap(p[i], p[rng.below(i + 1)]);
  }
  return p;
}

std::vector<NodeId> bit_complement(std::size_t n) {
  std::vector<NodeId> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = n - 1 - i;
  return p;
}

std::vector<NodeId> half_swap(unsigned bits, std::size_t n) {
  // Swap the low and high halves of the (2n-1)-bit address (the class bit
  // stays): sends every packet to a different cluster.
  std::vector<NodeId> p(n);
  const unsigned w = bits / 2;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 low = dc::bits::field(i, 0, w);
    const u64 high = dc::bits::field(i, w, w);
    p[i] = dc::bits::with_field(
        dc::bits::with_field(static_cast<u64>(i), 0, w, high), w, w, low);
  }
  return p;
}

}  // namespace

int main() {
  dc::bench::Acceptance acc;

  dc::Table t("Store-and-forward permutation routing (1-port model)");
  t.header({"pattern", "network", "nodes", "links", "cycles", "avg latency",
            "max queue"});

  for (unsigned n : {3u, 4u, 5u}) {
    const dc::net::DualCube d(n);
    const dc::net::Hypercube q(2 * n - 1);
    const std::size_t N = d.node_count();

    struct Pattern {
      std::string name;
      std::vector<NodeId> dest;
    };
    std::vector<Pattern> patterns;
    patterns.push_back({"random perm", random_permutation(N, n)});
    patterns.push_back({"bit complement", bit_complement(N)});
    patterns.push_back({"half swap", half_swap(2 * n - 1, N)});

    for (const auto& pat : patterns) {
      dc::sim::Machine md(d);
      const auto rd = dc::sim::route_packets(md, pat.dest, [&](NodeId s, NodeId v) {
        return dc::net::route_dual_cube(d, s, v);
      });
      dc::sim::Machine mq(q);
      const auto rq = dc::sim::route_packets(mq, pat.dest, [&](NodeId s, NodeId v) {
        return dc::net::route_hypercube(q, s, v);
      });
      t.row({pat.name, d.name(), std::to_string(N),
             std::to_string(d.edge_count()), std::to_string(rd.cycles),
             dc::Table::cell_to_string(rd.avg_latency),
             std::to_string(rd.max_queue)});
      t.row({pat.name, q.name(), std::to_string(N),
             std::to_string(q.edge_count()), std::to_string(rq.cycles),
             dc::Table::cell_to_string(rq.avg_latency),
             std::to_string(rq.max_queue)});

      acc.expect(rd.cycles > 0 && rq.cycles > 0,
                 pat.name + " drains on both networks, n=" + std::to_string(n));
      // Sanity shape: the dual-cube should stay within a small factor of
      // the hypercube despite having roughly half the links.
      acc.expect(rd.cycles <= 8 * rq.cycles + 16,
                 pat.name + " dual-cube within a small factor, n=" +
                     std::to_string(n));
    }
  }
  std::cout << t << "\n";
  std::cout << "the dual-cube pays a constant-factor latency premium for\n"
               "halving the links; cross-edges are the shared bottleneck on\n"
               "cluster-changing traffic (half swap).\n";
  return acc.finish("tab_routing_simulation");
}
