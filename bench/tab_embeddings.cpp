// Embedding quality (paper §1: the dual-cube "keeps most of the
// interesting properties of the hypercube"). Two classic guests:
//
//   * ring of N nodes — embeds in D_n with dilation 1 (explicit
//     Hamiltonian cycle, alternating-cluster construction);
//   * 2^a x 2^b torus — the Gray-code map that is dilation-1 on Q_(2n-1)
//     stretches to dilation 3 on D_n (foreign-field bit flips are
//     distance-3 pairs), mirroring the 3x algorithm-emulation factor.
#include <iostream>

#include "bench/bench_util.hpp"
#include "support/table.hpp"
#include "topology/dual_cube.hpp"
#include "topology/hamiltonian.hpp"
#include "topology/hypercube.hpp"
#include "topology/torus_embedding.hpp"

int main() {
  dc::bench::Acceptance acc;

  dc::Table t("Guest-graph embeddings (dilation = stretched edge length)");
  t.header({"guest", "host", "max dilation", "avg dilation"});

  for (unsigned n : {2u, 3u, 4u}) {
    const dc::net::DualCube d(n);
    const dc::net::Hypercube q(2 * n - 1);

    // Ring via the Hamiltonian cycle: dilation 1 by construction.
    const auto ring = dc::net::dual_cube_hamiltonian_cycle(d);
    std::vector<std::pair<dc::u64, dc::u64>> ring_edges;
    for (std::size_t i = 0; i < ring.size(); ++i)
      ring_edges.emplace_back(i, (i + 1) % ring.size());
    const auto ring_stats = dc::net::embedding_dilation(
        ring_edges, ring,
        [&](dc::net::NodeId a, dc::net::NodeId b) { return d.distance(a, b); });
    acc.expect(ring_stats.max == 1,
               "ring embeds with dilation 1 in D_" + std::to_string(n));
    t.row({"ring " + std::to_string(ring.size()), d.name(),
           std::to_string(ring_stats.max),
           dc::Table::cell_to_string(ring_stats.average)});

    // Torus via Gray coding, on both hosts with the same label map.
    const unsigned a = n;
    const unsigned b = n - 1;
    const auto map = dc::net::embed_torus_gray(a, b);
    const auto edges = dc::net::torus_edges(a, b);
    const auto on_q = dc::net::embedding_dilation(
        edges, map,
        [&](dc::net::NodeId x, dc::net::NodeId y) {
          return dc::bits::hamming(x, y);
        });
    const auto on_d = dc::net::embedding_dilation(
        edges, map,
        [&](dc::net::NodeId x, dc::net::NodeId y) { return d.distance(x, y); });
    acc.expect(on_q.max == 1, "Gray torus is dilation-1 on " + q.name());
    acc.expect(on_d.max <= 3, "Gray torus is dilation<=3 on " + d.name());
    const std::string guest = "torus " + std::to_string(1u << a) + "x" +
                              std::to_string(1u << b);
    t.row({guest, q.name(), std::to_string(on_q.max),
           dc::Table::cell_to_string(on_q.average)});
    t.row({guest, d.name(), std::to_string(on_d.max),
           dc::Table::cell_to_string(on_d.average)});
  }
  std::cout << t << "\n";
  std::cout << "rings are free (dilation 1); grids inherit the 3x cross-edge\n"
               "detour on the dimensions the dual-cube dropped.\n";
  return acc.finish("tab_embeddings");
}
