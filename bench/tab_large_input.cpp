// Future-work item 1: inputs larger than the network. Sweeps the per-node
// block size m for both the block prefix and the block sort and shows the
// headline property: communication cost is independent of m for prefix and
// equal to the scalar Theorem 2 count for sort — only local computation
// grows with m.
#include <algorithm>
#include <chrono>
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/block_prefix.hpp"
#include "core/block_sort.hpp"
#include "core/formulas.hpp"
#include "core/sequential.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using dc::u64;
  namespace f = dc::core::formulas;
  dc::bench::Acceptance acc;
  const dc::core::Plus<u64> plus;
  const unsigned n = 3;
  const dc::net::DualCube d(n);
  const dc::net::RecursiveDualCube r(n);

  dc::Table tp("Block prefix on D_3 (32 nodes), m keys per node");
  tp.header({"m", "total keys", "comm cycles", "comp steps", "correct"});
  for (const std::size_t m : {std::size_t{1}, std::size_t{4}, std::size_t{16},
                              std::size_t{64}, std::size_t{256},
                              std::size_t{1024}, std::size_t{4096}}) {
    dc::sim::Machine machine(d);
    dc::Rng rng(m);
    std::vector<u64> data(d.node_count() * m);
    for (auto& x : data) x = rng.below(1000);
    const auto out = dc::core::block_prefix(machine, d, plus, data, m);
    const bool ok = out == dc::core::seq_inclusive_scan(plus, data);
    const auto c = machine.counters();
    acc.expect(ok, "block prefix correct m=" + std::to_string(m));
    acc.expect(c.comm_cycles == f::dual_prefix_comm_impl(n),
               "comm independent of m (m=" + std::to_string(m) + ")");
    tp.add(m, data.size(), c.comm_cycles, c.comp_steps, ok);
  }
  std::cout << tp << "\n";

  dc::Table ts("Block sort on D_3 (32 nodes), m keys per node");
  ts.header({"m", "total keys", "comm cycles", "comp steps", "key ops",
             "sorted"});
  for (const std::size_t m : {std::size_t{1}, std::size_t{4}, std::size_t{16},
                              std::size_t{64}, std::size_t{256},
                              std::size_t{1024}}) {
    dc::sim::Machine machine(r);
    auto data = dc::generate_keys(dc::KeyDistribution::kUniform,
                                  r.node_count() * m, m);
    dc::core::block_sort(machine, r, data, m);
    const bool ok = std::is_sorted(data.begin(), data.end());
    const auto c = machine.counters();
    acc.expect(ok, "block sort correct m=" + std::to_string(m));
    acc.expect(c.comm_cycles == f::dual_sort_comm_exact(n),
               "sort comm equals scalar Theorem 2 count (m=" +
                   std::to_string(m) + ")");
    ts.add(m, data.size(), c.comm_cycles, c.comp_steps, c.ops, ok);
  }
  std::cout << ts << "\n";
  std::cout << "communication stays flat in m: the paper's algorithms absorb\n"
               "larger inputs purely through local work.\n";
  return acc.finish("tab_large_input");
}
