// Figures 1 and 2: the structure of D_2 and D_3.
//
// The paper's figures draw the two classes, the clusters (K_2s for D_2,
// Q_2s for D_3) and the cross-edges. This bench prints the same
// decomposition from the implementation and checks every structural fact
// the figures encode.
#include <iostream>

#include "bench/bench_util.hpp"
#include "topology/describe.hpp"
#include "topology/graph.hpp"

int main() {
  dc::bench::Acceptance acc;
  for (unsigned n : {2u, 3u}) {
    const dc::net::DualCube d(n);
    std::cout << "---- Figure " << (n - 1) << ": " << d.name() << " ----\n";
    std::cout << dc::net::describe_dual_cube(d) << "\n";

    acc.expect(d.node_count() == dc::bits::pow2(2 * n - 1),
               d.name() + " node count 2^(2n-1)");
    std::size_t deg = 0;
    acc.expect(dc::net::is_regular(d, &deg) && deg == n,
               d.name() + " is n-regular");
    acc.expect(dc::net::is_connected(d), d.name() + " connected");
    const auto stats = dc::net::distance_stats(d);
    acc.expect(stats.diameter == 2 * n, d.name() + " diameter = 2n");
    // Cross-edges form a perfect matching between the classes; clusters of
    // one class never touch each other directly.
    bool cross_ok = true;
    bool intra_ok = true;
    for (dc::net::NodeId u = 0; u < d.node_count(); ++u) {
      cross_ok = cross_ok && d.cross_neighbor(d.cross_neighbor(u)) == u;
      for (const auto v : d.neighbors(u))
        if (d.node_class(u) == d.node_class(v) && !d.same_cluster(u, v))
          intra_ok = false;
    }
    acc.expect(cross_ok, d.name() + " cross-edges are a perfect matching");
    acc.expect(intra_ok, d.name() + " no intra-class inter-cluster links");
  }
  return acc.finish("fig1_2_structure");
}
