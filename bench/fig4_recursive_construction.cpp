// Figure 4: the recursive construction of D_2 from four D_1 and of D_3 from
// four D_2 (Section 4). Prints the construction and verifies the paper's
// claims: each copy induces D_(n-1); the added links form two matchings
// (dimension 2n-2 for u_0 = 0, dimension 2n-3 for u_0 = 1) contributing
// exactly one link per node; and the presentation is isomorphic to the
// standard one.
#include <iostream>

#include "bench/bench_util.hpp"
#include "topology/describe.hpp"
#include "topology/graph.hpp"

int main() {
  dc::bench::Acceptance acc;
  for (unsigned n : {1u, 2u, 3u}) {
    const dc::net::RecursiveDualCube r(n);
    std::cout << "---- " << r.name() << " ----\n";
    std::cout << dc::net::describe_recursive_construction(r) << "\n";

    if (n >= 2) {
      const dc::net::RecursiveDualCube smaller(n - 1);
      const dc::u64 copy_size = dc::bits::pow2(2 * n - 3);
      bool copies_ok = true;
      bool one_external = true;
      for (dc::net::NodeId u = 0; u < r.node_count(); ++u) {
        unsigned external = 0;
        for (const auto v : r.neighbors(u)) {
          if (u / copy_size != v / copy_size) {
            ++external;
          } else if (!smaller.has_edge(u % copy_size, v % copy_size)) {
            copies_ok = false;
          }
        }
        if (external != 1) one_external = false;
      }
      acc.expect(copies_ok, r.name() + ": four induced copies are D_(n-1)");
      acc.expect(one_external,
                 r.name() + ": exactly one recursive link per node");
    }

    // Isomorphism with the standard presentation.
    const dc::net::DualCube d(n);
    bool iso = true;
    for (dc::net::NodeId u = 0; u < d.node_count() && iso; ++u) {
      if (r.to_standard(r.from_standard(u)) != u) iso = false;
      for (const auto v : d.neighbors(u))
        if (!r.has_edge(r.from_standard(u), r.from_standard(v))) iso = false;
    }
    acc.expect(iso, r.name() + " isomorphic to standard presentation");
  }
  return acc.finish("fig4_recursive_construction");
}
