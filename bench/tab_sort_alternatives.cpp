// Future-work item 3, sorting corner: three ways to sort on the dual-cube,
// all built from the paper's two techniques, occupying different points of
// the latency/bandwidth/local-work space:
//
//   * Algorithm 3 (bitonic):       6n²−7n+2 cycles, O(1)-size messages;
//   * enumeration (rank) sort:     2n cycles of all-gather (Θ(N)-size
//                                  messages) + Θ(N) local work + a
//                                  permutation drain;
//   * radix sort over b key bits:  b passes of (prefix + all-reduce +
//                                  permutation drain), message sizes O(1)
//                                  but cycles grow with the key width.
//
// All three are verified against std::sort on the same inputs.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/dual_sort.hpp"
#include "core/enumeration_sort.hpp"
#include "core/formulas.hpp"
#include "core/radix_sort.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using dc::u64;
  namespace f = dc::core::formulas;
  dc::bench::Acceptance acc;
  const unsigned key_bits = 8;

  dc::Table t("Sorting alternatives on D_n (8-bit keys; total comm cycles)");
  t.header({"n", "nodes", "bitonic (Alg 3)", "enumeration", "radix-" +
                std::to_string(key_bits), "all correct"});

  for (unsigned n : {2u, 3u, 4u, 5u}) {
    const dc::net::DualCube d(n);
    const dc::net::RecursiveDualCube r(n);
    dc::Rng rng(n);
    std::vector<u64> input(d.node_count());
    for (auto& k : input) k = rng.below(1u << key_bits);
    auto expected = input;
    std::sort(expected.begin(), expected.end());

    auto bitonic_keys = input;
    dc::sim::Machine mb(r);
    dc::core::dual_sort(mb, r, bitonic_keys);

    auto enum_keys = input;
    dc::sim::Machine me(d);
    dc::core::enumeration_sort(me, d, enum_keys);

    auto radix_keys = input;
    dc::sim::Machine mr(d);
    dc::core::radix_sort(mr, d, radix_keys, key_bits);

    const bool ok = bitonic_keys == expected && enum_keys == expected &&
                    radix_keys == expected;
    acc.expect(ok, "all three sorts agree with std::sort, n=" + std::to_string(n));
    acc.expect(mb.counters().comm_cycles == f::dual_sort_comm_exact(n),
               "bitonic cycles exact, n=" + std::to_string(n));

    t.add(n, d.node_count(), mb.counters().comm_cycles,
          me.counters().comm_cycles, mr.counters().comm_cycles, ok);
  }
  std::cout << t << "\n";
  std::cout << "enumeration trades message size (Θ(N) keys per message\n"
               "during the all-gather) for cycles; radix trades passes per\n"
               "key bit; bitonic keeps messages constant-size and pays n².\n";
  return acc.finish("tab_sort_alternatives");
}
